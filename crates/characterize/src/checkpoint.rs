//! Crash-resilient sweep execution: write-ahead checkpoint journals
//! and kill-and-resume.
//!
//! A characterization campaign is a serial sequence of [`run_sweep`]
//! calls. When its [`crate::session::Session`] has a checkpoint
//! session armed ([`crate::session::Session::arm_checkpoints`]), every
//! sweep writes a *journal* in the checkpoint directory: one CRC-guarded
//! line per completed (module, point) task, appended and fsynced the
//! moment the task's result exists. A run killed at any instant —
//! including mid-write — can then be resumed: the journal's intact
//! prefix is replayed into the sweep's result slots and only the
//! remaining (module, point) tasks are scheduled.
//!
//! # File format
//!
//! One journal per sweep, `sweep-NNNN.journal`, of CRC-framed JSON
//! lines `CCCCCCCC <payload>\n` (8 hex digits of IEEE CRC-32 over the
//! payload bytes, a space, the payload, a newline):
//!
//! * line 1 — the sweep's [`SweepManifest`] (schema-versioned; seed,
//!   backend, canonical fault-plan JSON, config digest, ordered point
//!   list);
//! * lines 2.. — result records, flat JSON objects with `module`,
//!   `point`, `status`, and the completed samples or the typed failure
//!   cause.
//!
//! A torn tail (no newline, bad CRC, malformed JSON) marks the journal
//! *truncated*: the damaged suffix is cut off and never trusted, the
//! `checkpoint/journal_truncated` counter ticks, and the affected
//! tasks simply re-run. A journal with no trusted manifest prefix at
//! all — empty, or a single torn line, the footprint of a kill before
//! the manifest fsync — restarts fresh, as if it never existed. A
//! *complete* manifest line that fails its CRC, by contrast, is a
//! typed error — it claims to prove what the journal belongs to but
//! cannot be trusted, and resuming would be a silent guess.
//!
//! # Determinism
//!
//! Resume is byte-identical to an uninterrupted run because per-point
//! results are order-independent: each (module, point) task seeds its
//! own RNG stream from `module_stream_seed(config, module, index, n)`,
//! a pure function of the slot that involves no other point. Replaying
//! a journaled result is therefore indistinguishable from re-running
//! the task; scheduling only the remaining slots perturbs nothing.
//! Session coverage is recorded once per *merged* outcome, so the
//! fleet-coverage footer matches too.
//!
//! # Fingerprint rules
//!
//! On resume, each journal's manifest must match the manifest of the
//! sweep about to run: same seed, backend, fault-plan JSON, config
//! digest (FNV-1a over the full `ExperimentConfig` `Debug` rendering —
//! covering fleet composition and every scale knob), module count,
//! ordered `(n, params_digest)` point list, and shard spec. Any
//! mismatch is a typed [`CheckpointError::Mismatch`] naming the first
//! differing field — never a silent resume of the wrong campaign.
//!
//! # Sharding
//!
//! The same journals are the hand-off medium for multi-process sweeps
//! (see [`crate::shard`]). A *shard worker* session
//! ([`crate::session::Session::arm_sharded_checkpoints`]) runs every
//! sweep through the sharded path: only the `(module,
//! point)` slots [`slot_shard`] assigns to the worker are scheduled and
//! journaled, and the journal manifest records the shard spec. The
//! coordinator then fuses the per-shard journals with
//! [`merge_sweep_journals`] — producing a journal byte-identical to an
//! unsharded run's, because every record is a pure function of its slot
//! — and replays the merged directory in-process for the final,
//! byte-identical campaign output. A killed worker resumes from its own
//! journal exactly like a single-process run.
//!
//! [`run_sweep`]: crate::fleet::run_sweep

use std::fmt::Debug;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use simra_bender::TestSetup;
use simra_core::rowgroup::GroupSpec;
use simra_exec::{stable_digest, ManifestError, PointDigest, ShardSpec, SweepManifest};
use simra_faults::FaultPlan;
use simra_telemetry::json::{self, Value};
use simra_telemetry::{Counter, Recorder};

use crate::config::ExperimentConfig;
use crate::fleet::{
    self, FailureCause, FleetClock, FleetOutcome, FleetPolicy, ModuleResult, SweepPoint,
};
use crate::pool::FleetPool;
use crate::session::Session;

/// Schema version of the journal *record* lines (the manifest line
/// carries its own version, `SWEEP_MANIFEST_SCHEMA_VERSION`).
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

/// Why a checkpointed sweep could not run or resume.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A manifest document was malformed or of an unknown schema
    /// version.
    Manifest(ManifestError),
    /// The journal on disk belongs to a different sweep than the one
    /// about to run (changed config, seed, scale, backend, faults, or
    /// point list).
    Mismatch {
        /// First differing manifest field.
        field: &'static str,
        /// The value recorded on disk.
        on_disk: String,
        /// The value of the run attempting to resume.
        current: String,
    },
    /// The journal is damaged in a way that cannot be repaired by
    /// truncation (e.g. its manifest line fails its CRC).
    Corrupt {
        /// The journal path.
        path: PathBuf,
        /// What is wrong with it.
        detail: String,
    },
    /// A fresh (non-resume) session was pointed at a directory that
    /// already holds a session.
    DirInUse {
        /// The session file that already exists.
        path: PathBuf,
    },
    /// `--resume` was requested but the directory holds no session.
    SessionMissing {
        /// The session file that was expected.
        path: PathBuf,
    },
    /// A checkpoint session was already armed on this session.
    AlreadyArmed,
    /// A shard journal offered for merging does not cover every slot
    /// its shard owns — the worker was killed and never resumed to
    /// completion.
    ShardIncomplete {
        /// The journal path.
        path: PathBuf,
        /// The shard the journal belongs to.
        shard: u32,
        /// First missing slot's module index.
        module: usize,
        /// First missing slot's point index.
        point: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io {
                context,
                path,
                source,
            } => write!(f, "{context} {}: {source}", path.display()),
            CheckpointError::Manifest(e) => write!(f, "{e}"),
            CheckpointError::Mismatch {
                field,
                on_disk,
                current,
            } => write!(
                f,
                "checkpoint manifest mismatch on '{field}': journal has {on_disk}, \
                 this run has {current} — resume requires the identical configuration"
            ),
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "corrupt journal {}: {detail}", path.display())
            }
            CheckpointError::DirInUse { path } => write!(
                f,
                "checkpoint session {} already exists; pass --resume to continue it \
                 or point --checkpoint-dir at a fresh directory",
                path.display()
            ),
            CheckpointError::SessionMissing { path } => write!(
                f,
                "--resume requested but {} does not exist; run once with \
                 --checkpoint-dir (without --resume) to start a session",
                path.display()
            ),
            CheckpointError::AlreadyArmed => {
                write!(f, "a checkpoint session is already armed on this session")
            }
            CheckpointError::ShardIncomplete {
                path,
                shard,
                module,
                point,
            } => write!(
                f,
                "shard {shard} journal {} is missing its result for (module {module}, \
                 point {point}); resume the sharded run so the worker can finish before merging",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            CheckpointError::Manifest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ManifestError> for CheckpointError {
    fn from(e: ManifestError) -> Self {
        CheckpointError::Manifest(e)
    }
}

fn io_err(context: &str, path: &Path, source: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        context: context.to_string(),
        path: path.to_path_buf(),
        source,
    }
}

/// IEEE CRC-32 (the zlib/PNG polynomial), bitwise. The journal writes
/// a handful of lines per sweep; table-free simplicity beats speed.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames a payload as a CRC-guarded journal line (without newline).
fn frame(payload: &str) -> String {
    format!("{:08x} {payload}", crc32(payload.as_bytes()))
}

/// Unframes a journal line: checks the CRC and returns the payload.
/// `None` means the line cannot be trusted (torn, flipped, malformed).
fn unframe(line: &[u8]) -> Option<&str> {
    if line.len() < 10 || line[8] != b' ' {
        return None;
    }
    let crc = u32::from_str_radix(std::str::from_utf8(&line[..8]).ok()?, 16).ok()?;
    let payload = &line[9..];
    if crc32(payload) != crc {
        return None;
    }
    std::str::from_utf8(payload).ok()
}

/// Telemetry counters of the checkpoint layer, under module
/// `"checkpoint"`.
struct CheckpointTelemetry {
    records_written: Counter,
    resume_points_skipped: Counter,
    journal_truncated: Counter,
}

impl CheckpointTelemetry {
    fn new(recorder: &Recorder) -> Self {
        CheckpointTelemetry {
            records_written: recorder.counter("checkpoint", "checkpoint_records_written"),
            resume_points_skipped: recorder.counter("checkpoint", "resume_points_skipped"),
            journal_truncated: recorder.counter("checkpoint", "journal_truncated"),
        }
    }
}

/// One journaled result: which (module, point) slot, and its outcome.
#[derive(Debug, Clone, PartialEq)]
struct JournalRecord {
    module: usize,
    point: usize,
    result: ModuleResult,
}

fn render_record(record: &JournalRecord) -> String {
    let JournalRecord {
        module,
        point,
        result,
    } = record;
    match result {
        ModuleResult::Completed { samples, attempts } => format!(
            "{{\"schema_version\":{JOURNAL_SCHEMA_VERSION},\"module\":{module},\
             \"point\":{point},\"status\":\"completed\",\"attempts\":{attempts},\
             \"samples\":{}}}",
            json::array(samples.iter().map(|s| json::number(*s))),
        ),
        ModuleResult::Failed { attempts, cause } => {
            let cause = match cause {
                FailureCause::Panic(msg) => {
                    format!("{{\"type\":\"panic\",\"message\":{}}}", json::quote(msg))
                }
                FailureCause::Dropout { at_group } => {
                    format!("{{\"type\":\"dropout\",\"at_group\":{at_group}}}")
                }
                FailureCause::DeadlineExceeded {
                    budget_ms,
                    spent_ms,
                } => format!(
                    "{{\"type\":\"deadline\",\"budget_ms\":{},\"spent_ms\":{}}}",
                    json::number(*budget_ms),
                    json::number(*spent_ms)
                ),
            };
            format!(
                "{{\"schema_version\":{JOURNAL_SCHEMA_VERSION},\"module\":{module},\
                 \"point\":{point},\"status\":\"failed\",\"attempts\":{attempts},\
                 \"cause\":{cause}}}"
            )
        }
    }
}

/// Parses one record payload. `None` means the payload is not a valid
/// record of this schema version — the journal loader treats that the
/// same as a CRC failure (truncate, don't trust).
fn parse_record(payload: &str) -> Option<JournalRecord> {
    let doc = Value::parse(payload).ok()?;
    if doc.get("schema_version")?.as_u32()? != JOURNAL_SCHEMA_VERSION {
        return None;
    }
    let module = doc.get("module")?.as_usize()?;
    let point = doc.get("point")?.as_usize()?;
    let attempts = doc.get("attempts")?.as_u32()?;
    let result = match doc.get("status")?.as_str()? {
        "completed" => ModuleResult::Completed {
            samples: doc
                .get("samples")?
                .as_array()?
                .iter()
                .map(Value::as_f64)
                .collect::<Option<Vec<f64>>>()?,
            attempts,
        },
        "failed" => {
            let cause = doc.get("cause")?;
            let cause = match cause.get("type")?.as_str()? {
                "panic" => FailureCause::Panic(cause.get("message")?.as_str()?.to_string()),
                "dropout" => FailureCause::Dropout {
                    at_group: cause.get("at_group")?.as_usize()?,
                },
                "deadline" => FailureCause::DeadlineExceeded {
                    budget_ms: cause.get("budget_ms")?.as_f64()?,
                    spent_ms: cause.get("spent_ms")?.as_f64()?,
                },
                _ => return None,
            };
            ModuleResult::Failed { attempts, cause }
        }
        _ => return None,
    };
    Some(JournalRecord {
        module,
        point,
        result,
    })
}

/// A loaded journal: its manifest, the records of its intact prefix,
/// and — when a damaged tail was found — the byte length of that
/// prefix so the caller can cut the damage off.
struct LoadedJournal {
    manifest: SweepManifest,
    records: Vec<JournalRecord>,
    /// `Some(len)` when the file has a damaged tail that must be
    /// truncated to `len` bytes before appending resumes.
    truncate_to: Option<u64>,
}

/// Outcome of inspecting a journal file that exists on disk.
enum JournalState {
    /// The file holds no trusted manifest prefix — it is empty, or its
    /// only content is a torn (newline-less) first line, exactly what a
    /// kill between `create_new` and the manifest fsync leaves behind.
    /// Nothing was ever proven by this journal, so it restarts fresh.
    Fresh {
        /// Whether a torn first line was discarded (ticks the
        /// `journal_truncated` counter).
        had_bytes: bool,
    },
    /// A trusted manifest line exists; resume from the intact prefix.
    Loaded(LoadedJournal),
}

/// Loads a journal, validating CRCs line by line. The first damaged
/// *record* line ends the trusted prefix (write-ahead semantics: a
/// suffix after damage proves nothing). A *complete* manifest line that
/// fails its CRC or does not parse is unrepairable — typed error — but
/// a file with no complete first line at all is merely
/// [`JournalState::Fresh`].
fn load_journal(path: &Path) -> Result<JournalState, CheckpointError> {
    let data = fs::read(path).map_err(|e| io_err("reading journal", path, e))?;
    let mut offset = 0usize;
    let mut manifest: Option<SweepManifest> = None;
    let mut records = Vec::new();
    let mut truncate_to = None;
    while offset < data.len() {
        let line_start = offset;
        let Some(nl) = data[offset..].iter().position(|b| *b == b'\n') else {
            // Torn final line: the write was interrupted mid-append.
            truncate_to = Some(line_start as u64);
            break;
        };
        let line = &data[offset..offset + nl];
        offset += nl + 1;
        let payload = unframe(line);
        if manifest.is_none() {
            let payload = payload.ok_or_else(|| CheckpointError::Corrupt {
                path: path.to_path_buf(),
                detail: "manifest line fails its CRC".into(),
            })?;
            manifest = Some(SweepManifest::from_json(payload)?);
            continue;
        }
        match payload.and_then(parse_record) {
            Some(record) => records.push(record),
            None => {
                truncate_to = Some(line_start as u64);
                break;
            }
        }
    }
    let Some(manifest) = manifest else {
        // Empty file or a single torn line: a crash before the manifest
        // line became durable. No prefix to trust, nothing to resume.
        return Ok(JournalState::Fresh {
            had_bytes: !data.is_empty(),
        });
    };
    Ok(JournalState::Loaded(LoadedJournal {
        manifest,
        records,
        truncate_to,
    }))
}

/// Append-only journal writer. Every append is flushed and fsynced
/// before it returns — the record is on disk before the sweep moves
/// on, which is what makes the journal *write-ahead*.
struct JournalWriter {
    path: PathBuf,
    file: File,
}

impl JournalWriter {
    /// Creates a fresh journal and durably writes its manifest line.
    fn create(path: &Path, manifest: &SweepManifest) -> Result<Self, CheckpointError> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| io_err("creating journal", path, e))?;
        let mut writer = JournalWriter {
            path: path.to_path_buf(),
            file,
        };
        writer.append_line(&frame(&manifest.to_json()))?;
        Ok(writer)
    }

    /// Opens an existing journal for appending, first truncating it to
    /// `keep_len` bytes when a damaged tail was detected. The file is
    /// always opened with `O_APPEND`: each write lands at the *current*
    /// EOF, so appends stay correct after `set_len` shrinks the file —
    /// without it the cursor would sit at offset 0 and overwrite the
    /// intact prefix.
    fn open_append(path: &Path, keep_len: Option<u64>) -> Result<Self, CheckpointError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err("opening journal", path, e))?;
        if let Some(len) = keep_len {
            file.set_len(len)
                .map_err(|e| io_err("truncating damaged journal tail of", path, e))?;
            file.sync_data()
                .map_err(|e| io_err("syncing journal", path, e))?;
        }
        Ok(JournalWriter {
            path: path.to_path_buf(),
            file,
        })
    }

    fn append_line(&mut self, line: &str) -> Result<(), CheckpointError> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.file
            .write_all(&bytes)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err("appending to journal", &self.path, e))
    }
}

/// Atomically rewrites `path` with the given lines: write a sibling
/// tmp file, fsync it, rename it over the original. Used for snapshot
/// compaction — the journal is replaced by its canonical form (records
/// sorted by (module, point)) in one step that either fully happens or
/// leaves the old journal intact.
fn atomic_rewrite(path: &Path, lines: &[String]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("journal.tmp");
    {
        let mut file =
            File::create(&tmp).map_err(|e| io_err("creating compaction file", &tmp, e))?;
        let mut buf = String::new();
        for line in lines {
            buf.push_str(line);
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())
            .and_then(|()| file.sync_all())
            .map_err(|e| io_err("writing compaction file", &tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err("renaming compaction file over", path, e))?;
    // Make the rename itself durable where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Which shard of a `count`-way split owns the `(module, point)` slot
/// of an `n_points`-wide grid: the flattened slot index modulo `count`.
/// A pure function of the slot, so coordinator, workers, and the merge
/// all agree on the partition without communicating — and the shards
/// are balanced to within one slot.
pub fn slot_shard(module: usize, point: usize, n_points: usize, count: u32) -> u32 {
    ((module * n_points + point) % count as usize) as u32
}

/// Builds the manifest of the sweep `(config, points)` under the given
/// id. Point parameters are digested from their `Debug` rendering —
/// deterministic for every parameter type the figure runners use.
fn manifest_for<P: Debug>(
    config: &ExperimentConfig,
    sweep_id: &str,
    points: &[SweepPoint<P>],
    shard: Option<ShardSpec>,
) -> SweepManifest {
    let empty = FaultPlan::default();
    let plan = config.faults.as_ref().unwrap_or(&empty);
    SweepManifest {
        schema_version: simra_exec::SWEEP_MANIFEST_SCHEMA_VERSION,
        sweep_id: sweep_id.to_string(),
        seed: config.seed,
        backend: config.backend.to_string(),
        faults: plan.to_json(),
        config_digest: stable_digest(&format!("{config:?}")),
        modules: config.modules.len(),
        points: points
            .iter()
            .map(|p| PointDigest {
                n: p.n,
                params_digest: stable_digest(&format!("{:?}", p.params)),
            })
            .collect(),
        shard,
    }
}

/// A checkpointed [`run_sweep_on`]: journals every completed (module,
/// point) task under `dir/<sweep_id>.journal`, and — when that journal
/// already exists — validates its manifest, replays its records, and
/// schedules only the remaining tasks. Returns results byte-identical
/// to an uninterrupted [`run_sweep_on`] of the same inputs, in any
/// kill/resume interleaving.
///
/// [`run_sweep_on`]: crate::fleet::run_sweep_on
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_checkpointed_on<P, F>(
    pool: &FleetPool,
    session: &Session,
    dir: &Path,
    sweep_id: &str,
    points: &[SweepPoint<P>],
    policy: FleetPolicy,
    clock: &dyn FleetClock,
    workers: usize,
    op: F,
) -> Result<Vec<FleetOutcome>, CheckpointError>
where
    P: Sync + Debug,
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    run_sweep_checkpointed_impl(
        pool, session, dir, sweep_id, points, policy, clock, workers, op, None,
    )
}

/// The shard-worker variant of [`run_sweep_checkpointed_on`]: runs (and
/// journals) only the `(module, point)` slots owned by `shard` per
/// [`slot_shard`], masking the rest out of scheduling. The journal's
/// manifest records the shard, so a resume with a different shard spec
/// — or an unsharded resume of a shard journal — is a typed mismatch.
///
/// The returned outcomes are **not** the sweep's results: unowned slots
/// are filled with inert placeholders (a zero-attempt failure). Shard
/// workers exist to populate journals; [`merge_sweep_journals`] plus an
/// unsharded replay over the merged journal produce the real results.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_checkpointed_sharded_on<P, F>(
    pool: &FleetPool,
    session: &Session,
    dir: &Path,
    sweep_id: &str,
    points: &[SweepPoint<P>],
    policy: FleetPolicy,
    clock: &dyn FleetClock,
    workers: usize,
    op: F,
    shard: ShardSpec,
) -> Result<Vec<FleetOutcome>, CheckpointError>
where
    P: Sync + Debug,
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    run_sweep_checkpointed_impl(
        pool,
        session,
        dir,
        sweep_id,
        points,
        policy,
        clock,
        workers,
        op,
        Some(shard),
    )
}

/// The placeholder filling outcome slots a shard does not own. Never
/// journaled (compaction writes owned slots only); its only job is to
/// keep the outcome grid rectangular so the worker's figure runners can
/// digest the sweep without panicking (their tables are garbage for
/// unowned slots, but a worker's stdout is discarded — only its journal
/// matters). The sample must be finite and non-empty: `Failed` slots or
/// NaN samples would trip `BoxStats::from_samples` in single-module
/// configurations where a shard owns none of a point's slots. The
/// `attempts: 0` marker distinguishes it from any real result.
fn unowned_slot() -> ModuleResult {
    ModuleResult::Completed {
        samples: vec![0.0],
        attempts: 0,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_sweep_checkpointed_impl<P, F>(
    pool: &FleetPool,
    session: &Session,
    dir: &Path,
    sweep_id: &str,
    points: &[SweepPoint<P>],
    policy: FleetPolicy,
    clock: &dyn FleetClock,
    workers: usize,
    op: F,
    shard: Option<ShardSpec>,
) -> Result<Vec<FleetOutcome>, CheckpointError>
where
    P: Sync + Debug,
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    let telemetry = CheckpointTelemetry::new(session.recorder());
    let config = session.config();
    let manifest = manifest_for(config, sweep_id, points, shard);
    let path = dir.join(format!("{sweep_id}.journal"));
    let modules = config.modules.len();
    let owned = |module: usize, point: usize| {
        shard.is_none_or(|s| slot_shard(module, point, points.len(), s.count) == s.index)
    };
    // [module][point] slots replayed from the journal.
    let mut replayed: Vec<Vec<Option<ModuleResult>>> = (0..modules)
        .map(|_| (0..points.len()).map(|_| None).collect())
        .collect();
    let writer = if path.exists() {
        match load_journal(&path)? {
            JournalState::Fresh { had_bytes } => {
                // Nothing trustworthy on disk — a crash before the
                // manifest line became durable. Restart this journal as
                // if it never existed.
                if had_bytes {
                    telemetry.journal_truncated.incr();
                }
                fs::remove_file(&path)
                    .map_err(|e| io_err("removing manifest-less journal", &path, e))?;
                JournalWriter::create(&path, &manifest)?
            }
            JournalState::Loaded(loaded) => {
                if let Some((field, on_disk, current)) = loaded.manifest.mismatch(&manifest) {
                    return Err(CheckpointError::Mismatch {
                        field,
                        on_disk,
                        current,
                    });
                }
                if loaded.truncate_to.is_some() {
                    telemetry.journal_truncated.incr();
                }
                for record in loaded.records {
                    if record.module >= modules || record.point >= points.len() {
                        return Err(CheckpointError::Corrupt {
                            path: path.clone(),
                            detail: format!(
                                "record addresses slot (module {}, point {}) outside the \
                                 {modules}×{} grid",
                                record.module,
                                record.point,
                                points.len()
                            ),
                        });
                    }
                    if !owned(record.module, record.point) {
                        return Err(CheckpointError::Corrupt {
                            path: path.clone(),
                            detail: format!(
                                "record addresses slot (module {}, point {}), which shard {} \
                                 of {} does not own",
                                record.module,
                                record.point,
                                shard.map_or(0, |s| s.index),
                                shard.map_or(1, |s| s.count),
                            ),
                        });
                    }
                    // Last record wins; duplicates can only arise from a
                    // crash between a retryable write and its
                    // bookkeeping, and the records are identical by
                    // determinism anyway.
                    if replayed[record.module][record.point].is_none() {
                        telemetry.resume_points_skipped.incr();
                    }
                    replayed[record.module][record.point] = Some(record.result);
                }
                JournalWriter::open_append(&path, loaded.truncate_to)?
            }
        }
    } else {
        fs::create_dir_all(dir).map_err(|e| io_err("creating checkpoint dir", dir, e))?;
        JournalWriter::create(&path, &manifest)?
    };
    // Masked slots: already replayed, or owned by another shard. With
    // every unowned slot masked, `all_done` means "every slot this
    // process owns is journaled" in shard mode and "the whole grid is
    // journaled" otherwise.
    let skip: Vec<Vec<bool>> = replayed
        .iter()
        .enumerate()
        .map(|(module, row)| {
            row.iter()
                .enumerate()
                .map(|(point, slot)| slot.is_some() || !owned(module, point))
                .collect()
        })
        .collect();
    let all_done = skip.iter().all(|row| row.iter().all(|s| *s));
    let fresh: Vec<Vec<Option<ModuleResult>>> = if all_done {
        (0..modules)
            .map(|_| (0..points.len()).map(|_| None).collect())
            .collect()
    } else {
        // Workers append concurrently; the mutex serializes writes and
        // carries the first I/O error out of the observer closure.
        let shared: Mutex<(JournalWriter, Option<CheckpointError>)> = Mutex::new((writer, None));
        let observer = |module: usize, point: usize, result: &ModuleResult| {
            let line = frame(&render_record(&JournalRecord {
                module,
                point,
                result: result.clone(),
            }));
            let mut guard = shared.lock().expect("journal writer poisoned");
            if guard.1.is_none() {
                match guard.0.append_line(&line) {
                    Ok(()) => telemetry.records_written.incr(),
                    Err(e) => guard.1 = Some(e),
                }
            }
        };
        let fresh = fleet::run_sweep_grid_on(
            pool,
            session,
            points,
            policy,
            clock,
            workers,
            op,
            Some(&skip),
            Some(&observer),
        );
        let (_, failure) = shared.into_inner().expect("journal writer poisoned");
        if let Some(e) = failure {
            // The sweep ran, but its results are not durably journaled;
            // returning them would break the resume contract.
            return Err(e);
        }
        fresh
    };
    let outcomes: Vec<FleetOutcome> = (0..points.len())
        .map(|point| FleetOutcome {
            slots: (0..modules)
                .map(|module| {
                    let slot = replayed[module][point]
                        .take()
                        .or_else(|| fresh[module][point].clone());
                    match slot {
                        Some(result) => result,
                        None if !owned(module, point) => unowned_slot(),
                        None => {
                            unreachable!("every owned grid slot is either replayed or freshly run")
                        }
                    }
                })
                .collect(),
        })
        .collect();
    if shard.is_none() {
        // Worker outcomes are placeholder-ridden scaffolding, not the
        // sweep's results; coverage is recorded by the merged replay.
        for outcome in &outcomes {
            session.record_coverage(outcome);
        }
    }
    // Snapshot compaction: replace the append-order journal with its
    // canonical form — manifest line plus owned records sorted by
    // (module, point) — via atomic tmp-file + rename. A kill during
    // compaction leaves either the old journal or the new one, both
    // complete. Placeholders for unowned slots are never written.
    let mut lines = vec![frame(&manifest.to_json())];
    for module in 0..modules {
        for (point, outcome) in outcomes.iter().enumerate() {
            if owned(module, point) {
                let record = JournalRecord {
                    module,
                    point,
                    result: outcome.slots[module].clone(),
                };
                lines.push(frame(&render_record(&record)));
            }
        }
    }
    atomic_rewrite(&path, &lines)?;
    Ok(outcomes)
}

/// Merges completed per-shard journals of one sweep into a single
/// journal at `output`, byte-identical to the compacted journal an
/// unsharded run of the same sweep would have written.
///
/// `inputs[i]` must be shard `i`'s journal (its manifest must record
/// shard `i/inputs.len()`); all manifests must agree on every other
/// field. Every shard must cover exactly the slots [`slot_shard`]
/// assigns it — a missing slot is [`CheckpointError::ShardIncomplete`]
/// (resume that worker first), a record outside the shard's ownership
/// is [`CheckpointError::Corrupt`]. On success the merged journal holds
/// the stripped (unsharded) manifest plus all records sorted by
/// `(module, point)`, written atomically; returns the record count.
///
/// The byte-identity argument: every record is a pure function of
/// `(config, module, point)` — per-slot RNG streams involve no other
/// slot — so the union of shard records *is* the unsharded record set,
/// and compaction ordering makes the rendering canonical.
pub fn merge_sweep_journals(inputs: &[PathBuf], output: &Path) -> Result<usize, CheckpointError> {
    let count = u32::try_from(inputs.len()).map_err(|_| CheckpointError::Corrupt {
        path: output.to_path_buf(),
        detail: "shard count exceeds u32".into(),
    })?;
    if count == 0 {
        return Err(CheckpointError::Corrupt {
            path: output.to_path_buf(),
            detail: "no shard journals to merge".into(),
        });
    }
    let mut base: Option<SweepManifest> = None;
    let mut slots: Vec<Vec<Option<ModuleResult>>> = Vec::new();
    for (index, path) in inputs.iter().enumerate() {
        let index = index as u32;
        let JournalState::Loaded(loaded) = load_journal(path)? else {
            return Err(CheckpointError::Corrupt {
                path: path.clone(),
                detail: "shard journal holds no trusted manifest".into(),
            });
        };
        let mut manifest = loaded.manifest;
        match manifest.shard.take() {
            Some(spec) if spec.index == index && spec.count == count => {}
            Some(spec) => {
                return Err(CheckpointError::Mismatch {
                    field: "shard",
                    on_disk: spec.to_string(),
                    current: format!("{index}/{count}"),
                });
            }
            None => {
                return Err(CheckpointError::Mismatch {
                    field: "shard",
                    on_disk: "unsharded".into(),
                    current: format!("{index}/{count}"),
                });
            }
        }
        // `manifest` is now shard-stripped: exactly what an unsharded
        // run of the same sweep would have written.
        match &base {
            None => {
                slots = vec![vec![None; manifest.points.len()]; manifest.modules];
                base = Some(manifest);
            }
            Some(b) => {
                if let Some((field, on_disk, current)) = b.mismatch(&manifest) {
                    return Err(CheckpointError::Mismatch {
                        field,
                        on_disk,
                        current,
                    });
                }
            }
        }
        let n_points = base.as_ref().expect("base manifest just set").points.len();
        for record in loaded.records {
            if record.module >= slots.len() || record.point >= n_points {
                return Err(CheckpointError::Corrupt {
                    path: path.clone(),
                    detail: format!(
                        "record addresses slot (module {}, point {}) outside the {}×{} grid",
                        record.module,
                        record.point,
                        slots.len(),
                        n_points
                    ),
                });
            }
            if slot_shard(record.module, record.point, n_points, count) != index {
                return Err(CheckpointError::Corrupt {
                    path: path.clone(),
                    detail: format!(
                        "record for slot (module {}, point {}) found in shard {index}'s \
                         journal, but shard {} owns it",
                        record.module,
                        record.point,
                        slot_shard(record.module, record.point, n_points, count)
                    ),
                });
            }
            slots[record.module][record.point] = Some(record.result);
        }
    }
    let base = base.expect("count > 0 guarantees a base manifest");
    let n_points = base.points.len();
    let mut lines = vec![frame(&base.to_json())];
    let mut records = 0usize;
    for (module, row) in slots.into_iter().enumerate() {
        for (point, slot) in row.into_iter().enumerate() {
            let Some(result) = slot else {
                let shard = slot_shard(module, point, n_points, count);
                return Err(CheckpointError::ShardIncomplete {
                    path: inputs[shard as usize].clone(),
                    shard,
                    module,
                    point,
                });
            };
            lines.push(frame(&render_record(&JournalRecord {
                module,
                point,
                result,
            })));
            records += 1;
        }
    }
    if let Some(dir) = output.parent() {
        fs::create_dir_all(dir).map_err(|e| io_err("creating merge output dir", dir, e))?;
    }
    atomic_rewrite(output, &lines)?;
    Ok(records)
}

/// One armed checkpoint session, owned by a
/// [`crate::session::Session`]. Sweeps are numbered in issue order,
/// which is deterministic because campaigns run their figures serially.
pub struct CheckpointSession {
    dir: PathBuf,
    next: AtomicUsize,
    /// `Some` when this session is a shard worker: every sweep runs
    /// through the sharded checkpoint path, owning only its slots.
    shard: Option<ShardSpec>,
}

/// File that marks a directory as a checkpoint session and pins the
/// configuration it was started with.
const SESSION_FILE: &str = "session.json";

impl CheckpointSession {
    /// Arms checkpointing over `dir` for a campaign running `config`:
    /// every sweep issued through the returned session journals into
    /// `dir`. Pass `shard` to arm a *shard-worker* session whose sweeps
    /// run through the sharded checkpoint path, owning only the slots
    /// [`slot_shard`] assigns to the shard; the session manifest
    /// records the spec, so resuming a shard directory with a different
    /// spec (or unsharded) is a typed mismatch.
    ///
    /// A fresh session (`resume = false`) refuses a directory that
    /// already holds one ([`CheckpointError::DirInUse`]) and records
    /// the session manifest; a resumed session (`resume = true`)
    /// requires that manifest to exist and to match the current
    /// configuration exactly ([`CheckpointError::Mismatch`] names the
    /// first differing field — seed, backend, faults, config digest,
    /// module count, or shard).
    pub fn arm(
        dir: &Path,
        config: &ExperimentConfig,
        resume: bool,
        shard: Option<ShardSpec>,
    ) -> Result<CheckpointSession, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| io_err("creating checkpoint dir", dir, e))?;
        let session_path = dir.join(SESSION_FILE);
        let manifest = manifest_for::<()>(config, "session", &[], shard);
        if resume {
            if !session_path.exists() {
                return Err(CheckpointError::SessionMissing { path: session_path });
            }
            let text = fs::read_to_string(&session_path)
                .map_err(|e| io_err("reading session manifest", &session_path, e))?;
            let on_disk = SweepManifest::from_json(text.trim())?;
            if let Some((field, on_disk, current)) = on_disk.mismatch(&manifest) {
                return Err(CheckpointError::Mismatch {
                    field,
                    on_disk,
                    current,
                });
            }
        } else {
            if session_path.exists() {
                return Err(CheckpointError::DirInUse { path: session_path });
            }
            atomic_rewrite(&session_path, &[manifest.to_json()])?;
        }
        Ok(CheckpointSession {
            dir: dir.to_path_buf(),
            next: AtomicUsize::new(0),
            shard,
        })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard this session is pinned to, if it is a worker session.
    pub fn shard(&self) -> Option<ShardSpec> {
        self.shard
    }
}

/// The armed-session entry point called by
/// [`run_sweep`](crate::fleet::run_sweep): assigns the next sweep id
/// and runs the sweep checkpointed. A checkpoint failure here aborts
/// the process with the typed error's message and exit code 2 — this
/// path is only reachable from an armed session, where carrying on
/// without durable checkpoints would silently break the resume
/// contract the user asked for.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sweep_for_session<P, F>(
    checkpoint: &CheckpointSession,
    pool: &FleetPool,
    session: &Session,
    points: &[SweepPoint<P>],
    policy: FleetPolicy,
    clock: &dyn FleetClock,
    workers: usize,
    op: F,
) -> Vec<FleetOutcome>
where
    P: Sync + Debug,
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    let sweep_id = format!(
        "sweep-{:04}",
        checkpoint.next.fetch_add(1, Ordering::SeqCst)
    );
    match run_sweep_checkpointed_impl(
        pool,
        session,
        &checkpoint.dir,
        &sweep_id,
        points,
        policy,
        clock,
        workers,
        op,
        checkpoint.shard,
    ) {
        Ok(outcomes) => outcomes,
        Err(e) => {
            eprintln!("error: checkpoint failure in {sweep_id}: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::MockClock;
    use rand::Rng;
    use std::sync::atomic::AtomicU32;

    /// A per-test scratch directory under the system temp dir; no
    /// tempfile dependency needed.
    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "simra-checkpoint-{}-{}-{tag}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn probe_op(
        scale: &f64,
        setup: &mut TestSetup,
        g: &GroupSpec,
        rng: &mut StdRng,
    ) -> Option<f64> {
        Some(
            (g.local_rows[0] as f64 + rng.gen::<f64>() + setup.module().seed() as f64 * 1e-6)
                * scale,
        )
    }

    fn two_module_config() -> ExperimentConfig {
        let mut config = ExperimentConfig::quick();
        config.modules.push(crate::config::ModuleUnderTest {
            profile: simra_dram::VendorProfile::mfr_m_e_die(),
            seed: 21,
        });
        config
    }

    fn points() -> Vec<SweepPoint<f64>> {
        [2u32, 4, 8, 4]
            .iter()
            .map(|&n| SweepPoint::new(n, f64::from(n) * 0.5))
            .collect()
    }

    fn run_checkpointed(
        config: &ExperimentConfig,
        dir: &Path,
    ) -> Result<Vec<FleetOutcome>, CheckpointError> {
        let clock = MockClock::new();
        run_sweep_checkpointed_on(
            FleetPool::global(),
            &Session::new(config.clone()),
            dir,
            "sweep-0000",
            &points(),
            FleetPolicy::default(),
            &clock,
            2,
            probe_op,
        )
    }

    fn reference(config: &ExperimentConfig) -> Vec<FleetOutcome> {
        let clock = MockClock::new();
        fleet::run_sweep_with(
            &Session::new(config.clone()),
            &points(),
            FleetPolicy::default(),
            &clock,
            2,
            probe_op,
        )
    }

    fn journal_path(dir: &Path) -> PathBuf {
        dir.join("sweep-0000.journal")
    }

    /// Byte ranges of every line in the journal, newline included.
    fn line_spans(data: &[u8]) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut start = 0;
        for (i, b) in data.iter().enumerate() {
            if *b == b'\n' {
                spans.push((start, i + 1));
                start = i + 1;
            }
        }
        spans
    }

    #[test]
    fn fresh_run_matches_uncheckpointed_reference() {
        let config = two_module_config();
        let dir = scratch("fresh");
        let outcomes = run_checkpointed(&config, &dir).unwrap();
        assert_eq!(outcomes, reference(&config));
        assert!(journal_path(&dir).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_journal_replays_without_rerunning() {
        let config = two_module_config();
        let dir = scratch("replay");
        let first = run_checkpointed(&config, &dir).unwrap();
        // Second run fast-forwards entirely through the journal.
        let second = run_checkpointed(&config, &dir).unwrap();
        assert_eq!(first, second);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_journal_resumes_to_identical_results() {
        let config = two_module_config();
        let dir = scratch("partial");
        let full = run_checkpointed(&config, &dir).unwrap();
        let path = journal_path(&dir);
        let data = fs::read(&path).unwrap();
        let spans = line_spans(&data);
        assert!(spans.len() > 3, "manifest + 8 records expected");
        // Keep the manifest and the first two records — as if the run
        // was killed early — then resume.
        for keep in [1usize, 2, 3, spans.len() - 1] {
            fs::write(&path, &data[..spans[keep - 1].1]).unwrap();
            let resumed = run_checkpointed(&config, &dir).unwrap();
            assert_eq!(resumed, full, "keep={keep}");
            // Resume compacted the journal back to its full form.
            assert_eq!(fs::read(&path).unwrap(), data, "keep={keep}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_is_truncated_not_trusted() {
        let config = two_module_config();
        let dir = scratch("torn");
        let full = run_checkpointed(&config, &dir).unwrap();
        let path = journal_path(&dir);
        let data = fs::read(&path).unwrap();
        let spans = line_spans(&data);
        // Keep two intact records, then a half-written third: a real
        // SIGKILL mid-append.
        let keep = spans[2].1;
        let mut torn = data[..keep].to_vec();
        torn.extend_from_slice(&data[spans[3].0..spans[3].0 + 17]);
        fs::write(&path, &torn).unwrap();
        let resumed = run_checkpointed(&config, &dir).unwrap();
        assert_eq!(resumed, full);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_torn_manifest_journal_restarts_fresh() {
        let config = two_module_config();
        let dir = scratch("freshagain");
        let full = run_checkpointed(&config, &dir).unwrap();
        let path = journal_path(&dir);
        // A kill between journal creation and the manifest line's fsync
        // leaves an empty file; resume must restart the journal as
        // fresh, not fail with a typed error.
        fs::write(&path, b"").unwrap();
        assert_eq!(run_checkpointed(&config, &dir).unwrap(), full);
        // ... or a torn, newline-less manifest prefix — same recovery.
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..20]).unwrap();
        assert_eq!(run_checkpointed(&config, &dir).unwrap(), full);
        // Both recoveries recreated and compacted the full journal.
        assert_eq!(fs::read(&path).unwrap(), data);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_resume_appends_at_eof_and_survives_second_kill() {
        let config = two_module_config();
        let dir = scratch("doublekill");
        let full = run_checkpointed(&config, &dir).unwrap();
        let path = journal_path(&dir);
        let data = fs::read(&path).unwrap();
        let spans = line_spans(&data);
        // Keep manifest + two records, then a half-written third: a
        // SIGKILL mid-append.
        let keep = spans[2].1;
        let mut torn = data[..keep].to_vec();
        torn.extend_from_slice(&data[spans[3].0..spans[3].0 + 17]);
        fs::write(&path, &torn).unwrap();
        // Replay the resume's journal writes by hand: truncate the
        // damaged tail, append one completed record, then "crash"
        // before compaction by dropping the writer.
        let JournalState::Loaded(loaded) = load_journal(&path).unwrap() else {
            panic!("journal with an intact manifest must load");
        };
        assert_eq!(loaded.truncate_to, Some(keep as u64));
        {
            let mut writer = JournalWriter::open_append(&path, loaded.truncate_to).unwrap();
            let replay_line = std::str::from_utf8(&data[spans[3].0..spans[3].1 - 1]).unwrap();
            writer.append_line(replay_line).unwrap();
        }
        // The append landed at EOF: intact prefix untouched, the new
        // record after it — not overwriting the manifest at byte 0.
        let mid_run = fs::read(&path).unwrap();
        assert_eq!(&mid_run[..keep], &data[..keep], "prefix must stay intact");
        assert_eq!(&mid_run[keep..], &data[spans[3].0..spans[3].1]);
        // The second kill struck before compaction; a second resume
        // must load this journal and finish byte-identical.
        let resumed = run_checkpointed(&config, &dir).unwrap();
        assert_eq!(resumed, full);
        assert_eq!(fs::read(&path).unwrap(), data);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_crc_byte_fails_safe() {
        let config = two_module_config();
        let dir = scratch("crcflip");
        let full = run_checkpointed(&config, &dir).unwrap();
        let path = journal_path(&dir);
        let mut data = fs::read(&path).unwrap();
        let spans = line_spans(&data);
        // Flip one payload byte inside the third record; its CRC no
        // longer matches, so that record and everything after it must
        // be dropped and re-run — never trusted.
        let (start, end) = spans[3];
        let mid = (start + end) / 2;
        data[mid] ^= 0x01;
        fs::write(&path, &data).unwrap();
        let resumed = run_checkpointed(&config, &dir).unwrap();
        assert_eq!(resumed, full);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_schema_version_is_a_typed_error() {
        let config = two_module_config();
        let dir = scratch("stale");
        run_checkpointed(&config, &dir).unwrap();
        let path = journal_path(&dir);
        let data = fs::read(&path).unwrap();
        let spans = line_spans(&data);
        // Rewrite the manifest line as a (validly CRC-framed) document
        // of a future schema version: the loader must refuse with a
        // typed error, not guess.
        let manifest_payload = std::str::from_utf8(&data[9..spans[0].1 - 1])
            .unwrap()
            .replacen("\"schema_version\":1", "\"schema_version\":99", 1);
        let mut rewritten = frame(&manifest_payload).into_bytes();
        rewritten.push(b'\n');
        rewritten.extend_from_slice(&data[spans[0].1..]);
        fs::write(&path, &rewritten).unwrap();
        match run_checkpointed(&config, &dir) {
            Err(CheckpointError::Manifest(ManifestError::SchemaVersion {
                found: 99,
                expected: 1,
            })) => {}
            other => panic!("expected a schema-version error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_line_is_a_typed_error() {
        let config = two_module_config();
        let dir = scratch("badmanifest");
        run_checkpointed(&config, &dir).unwrap();
        let path = journal_path(&dir);
        let mut data = fs::read(&path).unwrap();
        data[2] ^= 0xFF; // damage the manifest line's CRC field
        fs::write(&path, &data).unwrap();
        match run_checkpointed(&config, &dir) {
            Err(CheckpointError::Corrupt { detail, .. }) => {
                assert!(detail.contains("manifest"), "{detail}");
            }
            other => panic!("expected a corrupt-journal error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_seed_refuses_resume() {
        let config = two_module_config();
        let dir = scratch("mismatch");
        run_checkpointed(&config, &dir).unwrap();
        let mut other = config.clone();
        other.seed ^= 1;
        match run_checkpointed(&other, &dir) {
            Err(CheckpointError::Mismatch { field, .. }) => assert_eq!(field, "seed"),
            other => panic!("expected a manifest mismatch, got {other:?}"),
        }
        // A scale change is caught by the config digest.
        let mut other = config.clone();
        other.groups_per_subarray += 1;
        match run_checkpointed(&other, &dir) {
            Err(CheckpointError::Mismatch { field, .. }) => assert_eq!(field, "config_digest"),
            other => panic!("expected a manifest mismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_sweeps_checkpoint_too() {
        // Failed slots (a permanent dropout) journal and replay like
        // completed ones.
        let mut config = two_module_config();
        config.faults = Some(FaultPlan {
            modules: vec![simra_faults::ModuleFault {
                module_index: 1,
                kind: simra_faults::ModuleFaultKind::Dropout {
                    at_group: 0,
                    recover_after_attempts: None,
                },
            }],
            ..FaultPlan::default()
        });
        let dir = scratch("faulted");
        let full = run_checkpointed(&config, &dir).unwrap();
        assert!(full
            .iter()
            .any(|o| matches!(o.slots[1], ModuleResult::Failed { .. })));
        let replayed = run_checkpointed(&config, &dir).unwrap();
        assert_eq!(replayed, full);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_lines_round_trip() {
        let records = [
            JournalRecord {
                module: 1,
                point: 3,
                result: ModuleResult::Completed {
                    samples: vec![0.25, 1.0 / 3.0, f64::NAN],
                    attempts: 2,
                },
            },
            JournalRecord {
                module: 0,
                point: 0,
                result: ModuleResult::Failed {
                    attempts: 3,
                    cause: FailureCause::Panic("boom \"quoted\"".into()),
                },
            },
            JournalRecord {
                module: 2,
                point: 1,
                result: ModuleResult::Failed {
                    attempts: 1,
                    cause: FailureCause::DeadlineExceeded {
                        budget_ms: 5.0,
                        spent_ms: 10.5,
                    },
                },
            },
            JournalRecord {
                module: 0,
                point: 2,
                result: ModuleResult::Failed {
                    attempts: 3,
                    cause: FailureCause::Dropout { at_group: 4 },
                },
            },
        ];
        for record in &records {
            let line = frame(&render_record(record));
            let payload = unframe(line.as_bytes()).expect("own frame must verify");
            let parsed = parse_record(payload).expect("own record must parse");
            assert_eq!(parsed.module, record.module);
            assert_eq!(parsed.point, record.point);
            // NaN-bearing samples compare by bits, not PartialEq.
            match (&parsed.result, &record.result) {
                (
                    ModuleResult::Completed {
                        samples: a,
                        attempts: x,
                    },
                    ModuleResult::Completed {
                        samples: b,
                        attempts: y,
                    },
                ) => {
                    assert_eq!(x, y);
                    assert_eq!(a.len(), b.len());
                    for (s, t) in a.iter().zip(b) {
                        assert!(
                            s.to_bits() == t.to_bits() || (s.is_nan() && t.is_nan()),
                            "{s} vs {t}"
                        );
                    }
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value ("123456789" → 0xCBF43926).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    fn run_sharded(
        config: &ExperimentConfig,
        dir: &Path,
        shard: ShardSpec,
    ) -> Result<Vec<FleetOutcome>, CheckpointError> {
        let clock = MockClock::new();
        run_sweep_checkpointed_sharded_on(
            FleetPool::global(),
            &Session::new(config.clone()),
            dir,
            "sweep-0000",
            &points(),
            FleetPolicy::default(),
            &clock,
            2,
            probe_op,
            shard,
        )
    }

    #[test]
    fn sharded_journals_merge_byte_identical_to_an_unsharded_run() {
        let config = two_module_config();
        let unsharded = scratch("shard-ref");
        let full = run_checkpointed(&config, &unsharded).unwrap();
        let golden = fs::read(journal_path(&unsharded)).unwrap();
        let n_points = points().len();
        for count in [1u32, 2, 3, 5] {
            let root = scratch(&format!("shard-x{count}"));
            let mut inputs = Vec::new();
            for index in 0..count {
                let dir = root.join(format!("shard-{index}"));
                let outcomes = run_sharded(&config, &dir, ShardSpec { index, count }).unwrap();
                for (point, outcome) in outcomes.iter().enumerate() {
                    for (module, slot) in outcome.slots.iter().enumerate() {
                        if slot_shard(module, point, n_points, count) == index {
                            assert_eq!(
                                slot, &full[point].slots[module],
                                "owned slot ({module},{point}) of shard {index}/{count}"
                            );
                        } else {
                            assert!(
                                matches!(slot, ModuleResult::Completed { attempts: 0, .. }),
                                "unowned slot ({module},{point}) must be a placeholder"
                            );
                        }
                    }
                }
                inputs.push(journal_path(&dir));
            }
            let merged = root.join("merged").join("sweep-0000.journal");
            let records = merge_sweep_journals(&inputs, &merged).unwrap();
            assert_eq!(records, 2 * n_points);
            assert_eq!(
                fs::read(&merged).unwrap(),
                golden,
                "merged journal must be byte-identical to the unsharded one (count={count})"
            );
            let _ = fs::remove_dir_all(&root);
        }
        let _ = fs::remove_dir_all(&unsharded);
    }

    #[test]
    fn a_killed_shard_worker_resumes_and_merges_identically() {
        let config = two_module_config();
        let unsharded = scratch("shard-kill-ref");
        run_checkpointed(&config, &unsharded).unwrap();
        let golden = fs::read(journal_path(&unsharded)).unwrap();
        let root = scratch("shard-kill");
        let dirs: Vec<PathBuf> = (0..2).map(|i| root.join(format!("shard-{i}"))).collect();
        run_sharded(&config, &dirs[0], ShardSpec { index: 0, count: 2 }).unwrap();
        run_sharded(&config, &dirs[1], ShardSpec { index: 1, count: 2 }).unwrap();
        // "Kill" shard 1 after its first record: truncate the journal to
        // the manifest plus one intact record, then resume it.
        let path = journal_path(&dirs[1]);
        let data = fs::read(&path).unwrap();
        let spans = line_spans(&data);
        fs::write(&path, &data[..spans[1].1]).unwrap();
        run_sharded(&config, &dirs[1], ShardSpec { index: 1, count: 2 }).unwrap();
        let inputs: Vec<PathBuf> = dirs.iter().map(|d| journal_path(d)).collect();
        let merged = root.join("merged").join("sweep-0000.journal");
        merge_sweep_journals(&inputs, &merged).unwrap();
        assert_eq!(fs::read(&merged).unwrap(), golden);
        let _ = fs::remove_dir_all(&root);
        let _ = fs::remove_dir_all(&unsharded);
    }

    #[test]
    fn merge_requires_every_shard_slot() {
        let config = two_module_config();
        let root = scratch("shard-hole");
        let dirs: Vec<PathBuf> = (0..2).map(|i| root.join(format!("shard-{i}"))).collect();
        run_sharded(&config, &dirs[0], ShardSpec { index: 0, count: 2 }).unwrap();
        run_sharded(&config, &dirs[1], ShardSpec { index: 1, count: 2 }).unwrap();
        // Drop shard 1's final record (an intact truncation, as if the
        // worker never got to that slot).
        let path = journal_path(&dirs[1]);
        let data = fs::read(&path).unwrap();
        let spans = line_spans(&data);
        fs::write(&path, &data[..spans[spans.len() - 2].1]).unwrap();
        let inputs: Vec<PathBuf> = dirs.iter().map(|d| journal_path(d)).collect();
        let merged = root.join("merged").join("sweep-0000.journal");
        match merge_sweep_journals(&inputs, &merged) {
            Err(CheckpointError::ShardIncomplete { shard: 1, path, .. }) => {
                assert_eq!(path, inputs[1]);
            }
            other => panic!("expected ShardIncomplete for shard 1, got {other:?}"),
        }
        assert!(!merged.exists(), "a failed merge must not leave output");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn merge_rejects_wrong_or_unsharded_specs() {
        let config = two_module_config();
        let root = scratch("shard-spec");
        // An unsharded journal offered as shard 0.
        let unsharded = root.join("unsharded");
        run_checkpointed(&config, &unsharded).unwrap();
        let merged = root.join("merged").join("sweep-0000.journal");
        match merge_sweep_journals(&[journal_path(&unsharded)], &merged) {
            Err(CheckpointError::Mismatch {
                field: "shard",
                on_disk,
                ..
            }) => assert_eq!(on_disk, "unsharded"),
            other => panic!("expected a shard mismatch, got {other:?}"),
        }
        // Shard 0's journal offered in shard 1's position.
        let shard0 = root.join("shard-0");
        run_sharded(&config, &shard0, ShardSpec { index: 0, count: 2 }).unwrap();
        match merge_sweep_journals(&[journal_path(&shard0), journal_path(&shard0)], &merged) {
            Err(CheckpointError::Mismatch {
                field: "shard",
                on_disk,
                current,
            }) => {
                assert_eq!(on_disk, "0/2");
                assert_eq!(current, "1/2");
            }
            other => panic!("expected a shard mismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn sharded_session_refuses_a_different_spec_on_resume() {
        let config = two_module_config();
        let dir = scratch("shard-respec");
        run_sharded(&config, &dir, ShardSpec { index: 0, count: 2 }).unwrap();
        match run_sharded(&config, &dir, ShardSpec { index: 1, count: 2 }) {
            Err(CheckpointError::Mismatch { field: "shard", .. }) => {}
            other => panic!("expected a shard mismatch, got {other:?}"),
        }
        match run_checkpointed(&config, &dir) {
            Err(CheckpointError::Mismatch { field: "shard", .. }) => {}
            other => panic!("expected a shard mismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Builds one synthetic journal file: a manifest line plus the given
    /// records, framed exactly as the journal writer would.
    fn write_synthetic_journal(
        path: &Path,
        config: &ExperimentConfig,
        pts: &[SweepPoint<f64>],
        shard: Option<ShardSpec>,
        records: &[JournalRecord],
    ) {
        let manifest = manifest_for(config, "sweep-0000", pts, shard);
        let mut lines = vec![frame(&manifest.to_json())];
        lines.extend(records.iter().map(|r| frame(&render_record(r))));
        let mut buf = String::new();
        for line in &lines {
            buf.push_str(line);
            buf.push('\n');
        }
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, buf).unwrap();
    }

    /// Deterministic synthetic result for a slot: the proptest below
    /// only needs *distinct, round-trippable* results, not real sweeps.
    fn synthetic_result(module: usize, point: usize, salt: u64) -> ModuleResult {
        let tag = salt
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((module * 31 + point) as u64);
        if tag.is_multiple_of(4) {
            ModuleResult::Failed {
                attempts: (tag % 3 + 1) as u32,
                cause: FailureCause::Panic(format!("synthetic panic {tag}")),
            }
        } else {
            ModuleResult::Completed {
                samples: vec![(tag % 1000) as f64 * 0.25, (tag % 777) as f64 * 0.5],
                attempts: 1,
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// Satellite invariant: for any grid shape, shard count, and
        /// record contents, merging the per-shard journals reconstructs
        /// exactly the unsharded record set — byte-identical journals.
        #[test]
        fn merged_shard_journals_reconstruct_the_unsharded_record_set(
            count in 1u32..6,
            n_points in 1usize..6,
            salt in 0u64..1_000_000,
        ) {
            let config = two_module_config();
            let modules = config.modules.len();
            let pts: Vec<SweepPoint<f64>> = (0..n_points)
                .map(|i| SweepPoint::new(i as u32 + 2, i as f64 * 0.5))
                .collect();
            let root = scratch(&format!("shard-prop-{count}-{n_points}-{salt}"));
            // The unsharded golden: all records, module-major.
            let mut all = Vec::new();
            for module in 0..modules {
                for point in 0..n_points {
                    all.push(JournalRecord {
                        module,
                        point,
                        result: synthetic_result(module, point, salt),
                    });
                }
            }
            let golden_path = root.join("unsharded.journal");
            write_synthetic_journal(&golden_path, &config, &pts, None, &all);
            // Per-shard journals: each holds exactly its owned records.
            let mut inputs = Vec::new();
            for index in 0..count {
                let owned: Vec<JournalRecord> = all
                    .iter()
                    .filter(|r| slot_shard(r.module, r.point, n_points, count) == index)
                    .cloned()
                    .collect();
                let path = root.join(format!("shard-{index}.journal"));
                write_synthetic_journal(
                    &path,
                    &config,
                    &pts,
                    Some(ShardSpec { index, count }),
                    &owned,
                );
                inputs.push(path);
            }
            let merged = root.join("merged.journal");
            let records = merge_sweep_journals(&inputs, &merged).unwrap();
            proptest::prop_assert_eq!(records, modules * n_points);
            proptest::prop_assert_eq!(
                fs::read(&merged).unwrap(),
                fs::read(&golden_path).unwrap()
            );
            let _ = fs::remove_dir_all(&root);
        }
    }
}
