//! Parallel execution of experiments across the module fleet, scheduled
//! as a *sweep grid*.
//!
//! A paper figure is a sweep: the same operation at many parameter
//! points (timings, temperatures, V_PP levels, row counts N) over the
//! same module fleet. [`run_sweep`] takes the whole point list at once
//! and builds one task *chain* per module: the chain walks its module
//! through every sweep point sequentially on a single reused rig, and
//! the chains themselves run in parallel on the persistent
//! [`FleetPool`]. Two consequences:
//!
//! * **no per-point barrier** — a slow module still working point k does
//!   not stop fast modules from moving on to point k+1; the figure's
//!   wall-clock is the longest chain, not the sum of per-point maxima;
//! * **no per-point setup cost** — worker threads are borrowed from the
//!   pool instead of being spawned and joined per point, and each
//!   chain's `DramModule` rig is reset (`reset_for_reuse`, an exact
//!   reinitialisation) instead of rebuilt, so voltage planes and fault
//!   overlays are allocated once per module per figure.
//!
//! # Determinism
//!
//! Scheduling freedom never changes results. Each (module, point) task
//! seeds its own `StdRng` from `module_stream_seed``(config, module,
//! index, n)` — a pure function that does not involve other points —
//! draws the module's group sample from it, then runs `op` group by
//! group continuing the same stream: the exact sequential semantics the
//! per-point executor had. Results land in slots indexed by (point,
//! module), so [`run_sweep`] output is **byte-identical** to looping
//! [`run_fleet`] over the points, which in turn is bit-identical to the
//! serial reference ([`collect_group_samples_serial`]), for every worker
//! count and interleaving. The rig pool is invisible for the same
//! reason: a reset module is observationally identical to a fresh one
//! (asserted by tests here and proptests in `tests/faults.rs`).
//!
//! # Hardening
//!
//! A real 18-module rig loses modules mid-sweep: a DIMM drops off the
//! bus, a harness script crashes, a thermal chamber stalls. Every
//! (module, point) task models all three through
//! [`simra_faults::FaultPlan`] and survives them:
//!
//! * **panic isolation** — each attempt runs under `catch_unwind`, so
//!   one module's crash can neither poison a worker thread nor take the
//!   fleet down (a panicked attempt forfeits its pooled rig; the retry
//!   mounts a fresh one);
//! * **bounded retry** — failed attempts are retried up to
//!   [`FleetPolicy::max_attempts`], with exponential backoff *charged*
//!   to the task's time budget (never slept: determinism over realism);
//! * **deadlines** — an optional per-task wall-clock budget is checked
//!   between row groups against a [`FleetClock`] (the injectable
//!   [`MockClock`] makes deadline outcomes deterministic in tests);
//!   blowing the budget is fatal, not retried;
//! * **graceful degradation** — every sweep point yields a
//!   [`FleetOutcome`] with one [`ModuleResult`] slot per module,
//!   completed or failed, so reports can compute statistics over the
//!   surviving quorum and say exactly which modules dropped and why.
//!
//! An empty (or absent) fault plan takes the exact fault-free code path:
//! the attempt body is one unified function
//! (`run_point_attempt`) whose fault hooks all collapse to no-ops, so
//! no fault RNG stream is ever consulted and output stays byte-identical
//! to builds that predate fault injection.
//!
//! # Telemetry
//!
//! Every run reports to its [`Session`]'s recorder (the process-global
//! recorder for `Session::new`): task lifecycle
//! (queued/started/retried/completed/failed/panicked, deadline
//! trips, charged backoff, attempts per task), the grid shape
//! (`grid_tasks` = points × modules), the rig pool (`pool_hit` /
//! `pool_miss`), and `executor_reuse` (runs served by a borrowed
//! persistent pool). Events are a pure function of `(config, points,
//! policy)` — never of scheduling — so all values are identical across
//! worker counts (asserted by `crates/characterize/tests/telemetry.rs`).

use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use simra_analog::params::NOMINAL_VPP;
use simra_bender::setup::VPP_RANGE_V;
use simra_bender::TestSetup;
use simra_core::rowgroup::{sample_groups, GroupSpec};
use simra_dram::DramModule;
use simra_faults::{FaultPlan, ModuleFaultKind};
use simra_telemetry::{Counter, Histogram, Recorder};

use crate::config::{ExperimentConfig, ModuleUnderTest};
use crate::pool::{panic_message, FleetPool};
use crate::session::Session;

/// Seed of the per-(module, N) stream that draws the module's groups and
/// then feeds `op` for every group. The module *index* is mixed in on top
/// of the module's silicon seed: two modules deliberately configured with
/// twinned silicon (same `m.seed`) must still draw distinct groups and
/// data, or the fleet would test the same thing twice and report it as
/// two samples. Index 0 contributes nothing, preserving the historical
/// single-module (quick-scale) streams bit-for-bit. Sweep parameters
/// other than `n` contribute nothing either: two points at the same N
/// replay the same stream, exactly as the per-point loop did.
fn module_stream_seed(
    config: &ExperimentConfig,
    module: &ModuleUnderTest,
    index: usize,
    n: u32,
) -> u64 {
    config.seed
        ^ module.seed.rotate_left(17)
        ^ ((n as u64) << 48)
        ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A time source for deadline enforcement. [`SystemClock`] is the real
/// thing; [`MockClock`] never advances unless told to, which makes
/// deadline outcomes identical across machines, worker counts, and runs.
pub trait FleetClock: Sync {
    /// Milliseconds since some fixed origin.
    fn now_ms(&self) -> f64;
}

/// Wall-clock time, measured from construction.
#[derive(Debug)]
pub struct SystemClock(Instant);

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock(Instant::now())
    }
}

impl FleetClock for SystemClock {
    fn now_ms(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e3
    }
}

/// A manually advanced clock (microsecond resolution). Time stands still
/// until a test calls [`MockClock::advance_ms`], so only *charged* time —
/// backoff and injected stalls — can ever trip a deadline.
#[derive(Debug, Default)]
pub struct MockClock(AtomicU64);

impl MockClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        MockClock::default()
    }

    /// Moves time forward by `ms` milliseconds.
    pub fn advance_ms(&self, ms: f64) {
        self.0.fetch_add((ms * 1e3) as u64, Ordering::Relaxed);
    }
}

impl FleetClock for MockClock {
    fn now_ms(&self) -> f64 {
        self.0.load(Ordering::Relaxed) as f64 / 1e3
    }
}

/// Retry and deadline policy for module tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetPolicy {
    /// Attempts per module task (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Base of the exponential backoff charged before retry `k`:
    /// `backoff_base_ms · 2^(k−2)` for k ≥ 2. The charge counts against
    /// the deadline budget but is never actually slept, so retries stay
    /// deterministic and fast.
    pub backoff_base_ms: f64,
    /// Per-task wall-clock budget (ms); `None` disables deadlines.
    pub deadline_ms: Option<f64>,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy {
            max_attempts: 3,
            backoff_base_ms: 10.0,
            deadline_ms: None,
        }
    }
}

/// Why a module task ultimately failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// The task panicked on its final attempt; payload message attached.
    Panic(String),
    /// The module stopped responding at the given group index.
    Dropout {
        /// Group index at which the module went silent.
        at_group: usize,
    },
    /// The task blew its wall-clock budget. Fatal on first occurrence —
    /// retrying a task that is already over budget only digs the hole
    /// deeper.
    DeadlineExceeded {
        /// The configured budget (ms).
        budget_ms: f64,
        /// Time charged when the check fired (ms).
        spent_ms: f64,
    },
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Panic(msg) => write!(f, "panicked: {msg}"),
            FailureCause::Dropout { at_group } => {
                write!(f, "dropped out at group {at_group}")
            }
            FailureCause::DeadlineExceeded {
                budget_ms,
                spent_ms,
            } => write!(
                f,
                "exceeded deadline ({spent_ms:.1} ms spent of {budget_ms:.1} ms)"
            ),
        }
    }
}

/// The fate of one module's task at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub enum ModuleResult {
    /// The task produced its samples (possibly after retries).
    Completed {
        /// Per-group success rates, in group order.
        samples: Vec<f64>,
        /// Attempts consumed (1 = first try succeeded).
        attempts: u32,
    },
    /// The task was given up on.
    Failed {
        /// Attempts consumed.
        attempts: u32,
        /// Terminal failure cause.
        cause: FailureCause,
    },
}

/// Per-module results of one sweep point, indexed by module position. No
/// slot is ever lost: a module that failed is *reported* failed, not
/// silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// One result per configured module, in `config.modules` order.
    pub slots: Vec<ModuleResult>,
}

impl FleetOutcome {
    /// All samples from completed modules, ordered by module then group.
    pub fn samples(&self) -> Vec<f64> {
        self.slots
            .iter()
            .filter_map(|slot| match slot {
                ModuleResult::Completed { samples, .. } => Some(samples.as_slice()),
                ModuleResult::Failed { .. } => None,
            })
            .flatten()
            .copied()
            .collect()
    }

    /// Consuming variant of [`FleetOutcome::samples`].
    pub fn into_samples(self) -> Vec<f64> {
        self.slots
            .into_iter()
            .filter_map(|slot| match slot {
                ModuleResult::Completed { samples, .. } => Some(samples),
                ModuleResult::Failed { .. } => None,
            })
            .flatten()
            .collect()
    }

    /// Number of modules that completed.
    pub fn ok_modules(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, ModuleResult::Completed { .. }))
            .count()
    }

    /// One-line summary naming every failed module and its cause.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "{}/{} modules completed",
            self.ok_modules(),
            self.slots.len()
        );
        for (index, slot) in self.slots.iter().enumerate() {
            if let ModuleResult::Failed { attempts, cause } = slot {
                s.push_str(&format!(
                    "; module {index} {cause} after {attempts} attempts"
                ));
            }
        }
        s
    }
}

/// One point of a sweep grid: the row count `n` (which selects the RNG
/// stream and group sample) plus arbitrary figure-specific parameters
/// handed to the op (timing, temperature, V_PP, data pattern, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint<P> {
    /// Rows activated simultaneously at this point.
    pub n: u32,
    /// Figure-specific parameters, passed to the op by reference.
    pub params: P,
}

impl<P> SweepPoint<P> {
    /// A sweep point at `n` simultaneously activated rows.
    pub fn new(n: u32, params: P) -> Self {
        SweepPoint { n, params }
    }
}

/// Telemetry series for the executor's task lifecycle, the grid shape,
/// and the rig pool, reported to the session's recorder. Every event is
/// a deterministic function of the run's `(config, points, policy)` —
/// never of scheduling — so values are identical across worker counts
/// (asserted by `crates/characterize/tests/telemetry.rs`).
struct FleetTelemetry {
    task_queued: Counter,
    task_started: Counter,
    task_retried: Counter,
    task_completed: Counter,
    task_failed: Counter,
    task_panicked: Counter,
    /// Module chains lost whole (a panic escaped the per-slot
    /// catch_unwind, e.g. in a slot observer) and degraded to per-slot
    /// failures.
    chain_panicked: Counter,
    deadline_tripped: Counter,
    /// (module × point) tasks submitted as one grid.
    grid_tasks: Counter,
    /// Runs served by a borrowed persistent executor (no thread spawns).
    executor_reuse: Counter,
    /// Module rig acquisitions satisfied by resetting a pooled rig.
    pool_hit: Counter,
    /// Module rig acquisitions that had to construct a fresh rig.
    pool_miss: Counter,
    backoff_charged_ms: Histogram,
    attempts: Histogram,
}

impl FleetTelemetry {
    fn new(recorder: &Recorder) -> Self {
        FleetTelemetry {
            task_queued: recorder.counter("fleet", "task_queued"),
            task_started: recorder.counter("fleet", "task_started"),
            task_retried: recorder.counter("fleet", "task_retried"),
            task_completed: recorder.counter("fleet", "task_completed"),
            task_failed: recorder.counter("fleet", "task_failed"),
            task_panicked: recorder.counter("fleet", "task_panicked"),
            chain_panicked: recorder.counter("fleet", "chain_panicked"),
            deadline_tripped: recorder.counter("fleet", "deadline_tripped"),
            grid_tasks: recorder.counter("fleet", "grid_tasks"),
            executor_reuse: recorder.counter("fleet", "executor_reuse"),
            pool_hit: recorder.counter("fleet", "pool_hit"),
            pool_miss: recorder.counter("fleet", "pool_miss"),
            backoff_charged_ms: recorder.histogram("fleet", "backoff_charged_ms"),
            attempts: recorder.histogram("fleet", "attempts_per_task"),
        }
    }
}

/// Everything a sweep chain needs, shared read-only across workers.
struct SweepCtx<'a, P, F> {
    session: &'a Session,
    config: &'a ExperimentConfig,
    plan: &'a FaultPlan,
    policy: FleetPolicy,
    clock: &'a dyn FleetClock,
    points: &'a [SweepPoint<P>],
    op: &'a F,
    telemetry: &'a FleetTelemetry,
}

/// Runs one module's task at one point on the serial reference path:
/// mount a fresh module, seed its stream, sample its groups, and run
/// `op` over them sequentially on that stream. No fault machinery at
/// all — this is the baseline `run_point_attempt` must match bit for
/// bit when the plan is empty.
fn run_module<F>(config: &ExperimentConfig, index: usize, n: u32, op: &F) -> Vec<f64>
where
    F: Fn(&mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64>,
{
    simra_exec::slot::begin();
    let module = &config.modules[index];
    let mut setup = TestSetup::with_module(DramModule::new(module.profile.clone(), module.seed));
    let mut rng = StdRng::seed_from_u64(module_stream_seed(config, module, index, n));
    let groups = sample_groups(
        setup.module().geometry(),
        n,
        config.banks,
        config.subarrays_per_bank,
        config.groups_per_subarray,
        &mut rng,
    );
    let mut samples = Vec::with_capacity(groups.len());
    for group in &groups {
        if let Some(sample) = op(&mut setup, group, &mut rng) {
            samples.push(sample);
        }
    }
    samples
}

/// One attempt at one (module, point) task. This is the *single* setup
/// path for faulted and fault-free runs alike — with an empty plan the
/// fault vector is empty, the droop hook is `None`, and the body
/// degenerates to exactly [`run_module`]'s loop. The RNG stream and
/// group sample are identical to [`run_module`]; faults only ever
/// *interrupt* the stream (dropout, panic, deadline) or perturb the rig
/// (cell overlay, V_PP droop), never consume from it.
///
/// Takes the mounted rig by value and hands it back with the verdict so
/// the chain can return it to the rig pool; a panic (injected or real)
/// unwinds past the return and forfeits the rig instead.
fn run_point_attempt<P, F>(
    ctx: &SweepCtx<'_, P, F>,
    index: usize,
    point: &SweepPoint<P>,
    dram: DramModule,
    attempt: u32,
    carried_ms: f64,
    started_ms: f64,
) -> (Result<Vec<f64>, FailureCause>, DramModule)
where
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64>,
{
    // Every attempt is a fresh slot epoch: stateful backends (hybrid)
    // reset their per-point history here, so a retry replays the exact
    // same escalation decisions and worker scheduling cannot leak state
    // between tasks.
    simra_exec::slot::begin();
    let config = ctx.config;
    let module = &config.modules[index];
    let mut setup = TestSetup::with_module(dram);
    setup.set_engine_counters(ctx.session.engine_counters().clone());
    let mut rng = StdRng::seed_from_u64(module_stream_seed(config, module, index, point.n));
    let groups = sample_groups(
        setup.module().geometry(),
        point.n,
        config.banks,
        config.subarrays_per_bank,
        config.groups_per_subarray,
        &mut rng,
    );
    let faults = ctx.plan.module_faults(index);
    let mut samples = Vec::with_capacity(groups.len());
    let mut stalled_ms = 0.0;
    let mut failure = None;
    'groups: for (group_index, group) in groups.iter().enumerate() {
        for kind in &faults {
            match *kind {
                ModuleFaultKind::Dropout {
                    at_group,
                    recover_after_attempts,
                } if group_index == at_group => {
                    let still_faulty = match recover_after_attempts {
                        Some(k) => attempt <= k,
                        None => true,
                    };
                    if still_faulty {
                        failure = Some(FailureCause::Dropout { at_group });
                        break 'groups;
                    }
                }
                ModuleFaultKind::PanicAt { at_group }
                    if group_index == at_group && attempt == 1 =>
                {
                    panic!("injected fault: module {index} panicked at group {at_group}");
                }
                ModuleFaultKind::Hang { at_group, stall_ms } if group_index == at_group => {
                    // Charged, not slept: the stall counts against the
                    // deadline budget without making the test suite wait.
                    stalled_ms += stall_ms;
                }
                _ => {}
            }
        }
        if let Some(budget_ms) = ctx.policy.deadline_ms {
            let spent_ms = carried_ms + stalled_ms + (ctx.clock.now_ms() - started_ms);
            if spent_ms > budget_ms {
                failure = Some(FailureCause::DeadlineExceeded {
                    budget_ms,
                    spent_ms,
                });
                break 'groups;
            }
        }
        if let Some(droop) = ctx.plan.vpp_droop {
            let vpp = if (droop.from_group..droop.to_group).contains(&group_index) {
                (NOMINAL_VPP - droop.delta_v).max(VPP_RANGE_V.0)
            } else {
                NOMINAL_VPP
            };
            setup
                .set_vpp(vpp)
                .expect("droop voltage is clamped into the supply range");
        }
        if let Some(sample) = (ctx.op)(&point.params, &mut setup, group, &mut rng) {
            samples.push(sample);
        }
    }
    let dram = setup.into_module();
    match failure {
        Some(cause) => (Err(cause), dram),
        None => (Ok(samples), dram),
    }
}

/// Largest exponent the backoff charge may reach: the charge saturates
/// at `backoff_base_ms · 2^30` (~12 days at the default 10 ms base) so
/// huge attempt counts can neither overflow a shift nor push the charge
/// to infinity.
const BACKOFF_EXPONENT_CAP: u32 = 30;

/// Exponential backoff charged before retry `attempt` (≥ 2):
/// `base · 2^(attempt − 2)`, saturating at 2^[`BACKOFF_EXPONENT_CAP`].
/// The previous `f64::from(1u32 << (attempt − 2))` panicked in debug
/// builds (and wrapped the shift in release) once `attempt ≥ 34`.
pub(crate) fn backoff_charge_ms(base_ms: f64, attempt: u32) -> f64 {
    let exponent = attempt.saturating_sub(2).min(BACKOFF_EXPONENT_CAP);
    base_ms * 2f64.powi(exponent as i32)
}

/// Drives one (module, point) task to a terminal [`ModuleResult`]:
/// acquire a rig from the chain's pool slot, attempt, isolate panics,
/// retry with charged backoff, give up on deadline or attempt
/// exhaustion. The rig returns to `rig` after every non-panicking
/// attempt (reset on next acquisition); a panicked attempt loses it, so
/// the retry — and only the retry — pays a fresh construction
/// (`pool_miss`), deterministically.
fn run_slot<P, F>(
    ctx: &SweepCtx<'_, P, F>,
    index: usize,
    point: &SweepPoint<P>,
    rig: &mut Option<DramModule>,
) -> ModuleResult
where
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64>,
{
    let mut carried_ms = 0.0;
    let mut attempt = 1u32;
    loop {
        if attempt > 1 {
            let charge = backoff_charge_ms(ctx.policy.backoff_base_ms, attempt);
            carried_ms += charge;
            ctx.telemetry.task_retried.incr();
            ctx.telemetry.backoff_charged_ms.observe(charge);
        }
        ctx.telemetry.task_started.incr();
        let started_ms = ctx.clock.now_ms();
        let pooled = rig.take();
        if pooled.is_some() {
            ctx.telemetry.pool_hit.incr();
        } else {
            ctx.telemetry.pool_miss.incr();
        }
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let dram = match pooled {
                Some(mut dram) => {
                    dram.reset_for_reuse();
                    dram
                }
                None => {
                    let module = &ctx.config.modules[index];
                    let mut dram = DramModule::new(module.profile.clone(), module.seed);
                    if let Some(spec) = ctx.plan.cell_spec() {
                        dram.set_fault_spec(Some(spec));
                    }
                    dram
                }
            };
            run_point_attempt(ctx, index, point, dram, attempt, carried_ms, started_ms)
        }));
        let cause = match outcome {
            Ok((result, dram)) => {
                *rig = Some(dram);
                match result {
                    Ok(samples) => {
                        ctx.telemetry.task_completed.incr();
                        ctx.telemetry.attempts.observe(f64::from(attempt));
                        return ModuleResult::Completed {
                            samples,
                            attempts: attempt,
                        };
                    }
                    Err(cause) => {
                        if matches!(cause, FailureCause::DeadlineExceeded { .. }) {
                            ctx.telemetry.deadline_tripped.incr();
                        }
                        cause
                    }
                }
            }
            Err(payload) => {
                ctx.telemetry.task_panicked.incr();
                FailureCause::Panic(panic_message(payload.as_ref()))
            }
        };
        let fatal = matches!(cause, FailureCause::DeadlineExceeded { .. });
        if fatal || attempt >= ctx.policy.max_attempts.max(1) {
            ctx.telemetry.task_failed.incr();
            ctx.telemetry.attempts.observe(f64::from(attempt));
            return ModuleResult::Failed {
                attempts: attempt,
                cause,
            };
        }
        attempt += 1;
    }
}

/// Callback handed each fresh `(module, point, result)` the moment the
/// slot completes — the checkpoint journal's write-ahead hook.
pub(crate) type SlotObserver<'a> = &'a (dyn Fn(usize, usize, &ModuleResult) + Sync);

/// One module's chain: every *scheduled* sweep point in order, on one
/// pooled rig. `skip[k]` masks out point `k` (its slot stays `None`) —
/// the checkpoint layer uses this to schedule only the points a resumed
/// run still owes. Skipping is invisible to the points that do run:
/// each (module, point) task seeds its own stream from
/// [`module_stream_seed`], a pure function of the slot, so a masked
/// chain produces bit-identical results for the slots it executes.
/// `observer` (if any) sees each fresh result as `(module, point,
/// result)` the moment the slot completes — the checkpoint journal's
/// write-ahead hook.
fn run_chain<P, F>(
    ctx: &SweepCtx<'_, P, F>,
    index: usize,
    skip: Option<&[bool]>,
    observer: Option<SlotObserver<'_>>,
) -> Vec<Option<ModuleResult>>
where
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64>,
{
    let mut rig: Option<DramModule> = None;
    ctx.points
        .iter()
        .enumerate()
        .map(|(point_index, point)| {
            if skip.is_some_and(|s| s[point_index]) {
                return None;
            }
            let result = run_slot(ctx, index, point, &mut rig);
            if let Some(observe) = observer {
                observe(index, point_index, &result);
            }
            Some(result)
        })
        .collect()
}

/// Resolves the worker count from an (injected) `SIMRA_THREADS` value:
/// a parseable override is clamped to ≥ 1, anything else falls back to
/// one worker per core; never more than there are module chains. Pure so
/// tests can cover every branch without mutating process-global
/// environment state (`set_var`/`remove_var` race with the parallel test
/// harness).
fn worker_count_from(var: Option<&str>, tasks: usize) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .map(|v| v.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(tasks)
        .max(1)
}

/// Worker count: `SIMRA_THREADS` if set (clamped to ≥ 1), else one per
/// core; never more than there are module chains.
pub(crate) fn executor_threads(tasks: usize) -> usize {
    let var = std::env::var("SIMRA_THREADS").ok();
    worker_count_from(var.as_deref(), tasks)
}

/// Session-wide coverage accounting: how many module tasks ran, completed,
/// needed retries, or failed — across every fleet run of the process.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetCoverage {
    /// Module tasks executed.
    pub tasks: usize,
    /// Tasks that completed (any number of attempts).
    pub completed: usize,
    /// Completed tasks that needed more than one attempt.
    pub retried: usize,
    /// Tasks given up on.
    pub failed: usize,
}

impl FleetCoverage {
    /// One-line summary for run footers.
    pub fn describe(&self) -> String {
        format!(
            "{}/{} module tasks completed ({} retried, {} failed)",
            self.completed, self.tasks, self.retried, self.failed
        )
    }
}

/// The partial-grid sweep engine underneath [`run_sweep_on`] and the
/// checkpoint layer's resume path: runs one chain per module over
/// `points`, masking out `(module, point)` slots where
/// `skip[module][point]` is true, and reporting each fresh result to
/// `observer` as it lands. Returns the chain-major `[module][point]`
/// matrix with `None` in masked slots.
///
/// Task telemetry counts *scheduled* slots only, so a resume that owes
/// three tasks queues three tasks. Session coverage is **not** recorded
/// here — callers account for it once they hold the full (replayed +
/// fresh) picture.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sweep_grid_on<P, F>(
    pool: &FleetPool,
    session: &Session,
    points: &[SweepPoint<P>],
    policy: FleetPolicy,
    clock: &dyn FleetClock,
    workers: usize,
    op: F,
    skip: Option<&[Vec<bool>]>,
    observer: Option<SlotObserver<'_>>,
) -> Vec<Vec<Option<ModuleResult>>>
where
    P: Sync,
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    let config = session.config();
    let fault_free = FaultPlan::default();
    let plan = config.faults.as_ref().unwrap_or(&fault_free);
    let telemetry = FleetTelemetry::new(session.recorder());
    let modules = config.modules.len();
    let scheduled = match skip {
        None => (modules * points.len()) as u64,
        Some(mask) => mask
            .iter()
            .map(|row| row.iter().filter(|s| !**s).count() as u64)
            .sum(),
    };
    telemetry.task_queued.add(scheduled);
    telemetry.grid_tasks.add(scheduled);
    telemetry.executor_reuse.incr();
    let ctx = SweepCtx {
        session,
        config,
        plan,
        policy,
        clock,
        points,
        op: &op,
        telemetry: &telemetry,
    };
    let chains: Vec<Mutex<Option<Vec<Option<ModuleResult>>>>> =
        (0..modules).map(|_| Mutex::new(None)).collect();
    let pool_verdict = pool.run_tasks(modules, workers, |index| {
        let results = run_chain(&ctx, index, skip.map(|s| s[index].as_slice()), observer);
        *chains[index].lock().unwrap_or_else(|e| e.into_inner()) = Some(results);
    });
    chains
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                Some(results) => results,
                // The chain task panicked outside `run_slot`'s
                // catch_unwind (e.g. a poisoned observer) and never
                // stored its results. Degrade that module to per-slot
                // panic failures instead of aborting the sweep — the
                // other chains' results are intact, and a checkpointed
                // run re-schedules these slots on resume.
                None => {
                    let message = pool_verdict
                        .as_ref()
                        .err()
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "fleet chain vanished without a panic".into());
                    telemetry.chain_panicked.incr();
                    (0..points.len())
                        .map(|point| {
                            if skip.is_some_and(|s| s[index][point]) {
                                None
                            } else {
                                Some(ModuleResult::Failed {
                                    attempts: 1,
                                    cause: FailureCause::Panic(message.clone()),
                                })
                            }
                        })
                        .collect()
                }
            }
        })
        .collect()
}

/// Fully parameterised sweep on an explicit [`FleetPool`]: the whole
/// (module × point) grid is submitted at once as one chain per module,
/// with at most `workers` threads (calling thread included) borrowed
/// from `pool`. Returns one [`FleetOutcome`] per point, in point order.
///
/// The outcome is identical for identical `(config, points, policy)`
/// regardless of `pool`, `workers`, or scheduling — and byte-identical
/// to looping [`run_fleet_with`] over the points one at a time.
pub fn run_sweep_on<P, F>(
    pool: &FleetPool,
    session: &Session,
    points: &[SweepPoint<P>],
    policy: FleetPolicy,
    clock: &dyn FleetClock,
    workers: usize,
    op: F,
) -> Vec<FleetOutcome>
where
    P: Sync,
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    let grid = run_sweep_grid_on(
        pool, session, points, policy, clock, workers, op, None, None,
    );
    let mut chains: Vec<std::vec::IntoIter<Option<ModuleResult>>> =
        grid.into_iter().map(Vec::into_iter).collect();
    let outcomes: Vec<FleetOutcome> = (0..points.len())
        .map(|_| FleetOutcome {
            slots: chains
                .iter_mut()
                .map(|chain| {
                    chain
                        .next()
                        .expect("fleet chain lost a sweep point")
                        .expect("unmasked grid leaves no slot empty")
                })
                .collect(),
        })
        .collect();
    for outcome in &outcomes {
        session.record_coverage(outcome);
    }
    outcomes
}

/// [`run_sweep_on`] on the process-wide [`FleetPool::global`] pool.
pub fn run_sweep_with<P, F>(
    session: &Session,
    points: &[SweepPoint<P>],
    policy: FleetPolicy,
    clock: &dyn FleetClock,
    workers: usize,
    op: F,
) -> Vec<FleetOutcome>
where
    P: Sync,
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    run_sweep_on(
        FleetPool::global(),
        session,
        points,
        policy,
        clock,
        workers,
        op,
    )
}

/// Runs `op` over the whole sweep grid — every point of `points` on
/// every configured module — with the config's fault plan (if any)
/// armed, the default retry policy, the system clock, the default
/// worker count, and the process-wide persistent pool. Returns one
/// [`FleetOutcome`] per point, in point order.
///
/// When the session has an armed checkpoint context
/// ([`Session::arm_checkpoints`]), the sweep is journaled and — on a
/// resumed session — fast-forwarded through its journal; results are
/// identical either way. The `P: Debug` bound exists for the
/// checkpoint manifest, which fingerprints each point's parameters.
pub fn run_sweep<P, F>(session: &Session, points: &[SweepPoint<P>], op: F) -> Vec<FleetOutcome>
where
    P: Sync + std::fmt::Debug,
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    let config = session.config();
    let mut policy = FleetPolicy::default();
    if let Some(plan) = config.faults.as_ref() {
        policy.deadline_ms = plan.deadline_ms;
    }
    let clock = SystemClock::default();
    let workers = executor_threads(config.modules.len());
    if let Some(checkpoint) = session.checkpoint() {
        return crate::checkpoint::run_sweep_for_session(
            checkpoint,
            FleetPool::global(),
            session,
            points,
            policy,
            &clock,
            workers,
            op,
        );
    }
    run_sweep_with(session, points, policy, &clock, workers, op)
}

/// Per-point sample vectors of a sweep: [`run_sweep`] with each point's
/// outcome reduced to its surviving samples (module order, then group
/// order) — the common case for figure runners.
pub fn sweep_group_samples<P, F>(
    session: &Session,
    points: &[SweepPoint<P>],
    op: F,
) -> Vec<Vec<f64>>
where
    P: Sync + std::fmt::Debug,
    F: Fn(&P, &mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    run_sweep(session, points, op)
        .into_iter()
        .map(FleetOutcome::into_samples)
        .collect()
}

/// Runs `op` on every sampled row group of `n` simultaneously activated
/// rows, across all configured modules, with the config's fault plan (if
/// any) armed, the default retry policy, the system clock, and the
/// default worker count. Returns the full per-module outcome.
///
/// This is a one-point [`run_sweep`]; figures with more than one point
/// should submit the whole grid instead.
pub fn run_fleet<F>(session: &Session, n: u32, op: F) -> FleetOutcome
where
    F: Fn(&mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    let config = session.config();
    let mut policy = FleetPolicy::default();
    if let Some(plan) = config.faults.as_ref() {
        policy.deadline_ms = plan.deadline_ms;
    }
    let clock = SystemClock::default();
    run_fleet_with(
        session,
        n,
        policy,
        &clock,
        executor_threads(config.modules.len()),
        op,
    )
}

/// Fully parameterised single-point fleet run: explicit policy, clock,
/// and worker count, on the process-wide pool. The outcome is identical
/// for identical `(config, n, policy)` regardless of `workers` — the
/// chaos proptests in `tests/faults.rs` assert exactly that.
pub fn run_fleet_with<F>(
    session: &Session,
    n: u32,
    policy: FleetPolicy,
    clock: &dyn FleetClock,
    workers: usize,
    op: F,
) -> FleetOutcome
where
    F: Fn(&mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    let points = [SweepPoint { n, params: () }];
    let mut outcomes = run_sweep_with(session, &points, policy, clock, workers, {
        let op = &op;
        move |_: &(), setup: &mut TestSetup, group: &GroupSpec, rng: &mut StdRng| {
            op(setup, group, rng)
        }
    });
    outcomes.pop().expect("one sweep point yields one outcome")
}

/// Runs `op` on every sampled row group of `n` simultaneously activated
/// rows, across all configured modules, on the persistent pool.
///
/// Returns all per-group success rates, ordered by module then group —
/// bit-identical to [`collect_group_samples_serial`] regardless of worker
/// count or scheduling. Groups for which `op` returns `None` (e.g. an
/// operation the part cannot perform) are skipped, as are modules that
/// fail terminally under an armed fault plan (see [`run_fleet`] for the
/// per-module accounting).
pub fn collect_group_samples<F>(session: &Session, n: u32, op: F) -> Vec<f64>
where
    F: Fn(&mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    run_fleet(session, n, op).into_samples()
}

/// The serial reference implementation: same module tasks, same RNG
/// streams, executed on the calling thread with no fault machinery, no
/// pool, and no rig reuse at all. Exists so tests (and sceptical
/// readers) can check the grid scheduler changes nothing but wall-clock.
pub fn collect_group_samples_serial<F>(config: &ExperimentConfig, n: u32, op: F) -> Vec<f64>
where
    F: Fn(&mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64>,
{
    (0..config.modules.len())
        .flat_map(|index| run_module(config, index, n, &op))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use simra_faults::ModuleFault;

    /// A session over `config` bound to the global recorder — the
    /// shortest path from the historical config-taking call sites.
    fn session_for(config: &ExperimentConfig) -> Session {
        Session::new(config.clone())
    }

    #[test]
    fn samples_cover_all_modules_and_groups() {
        let mut config = ExperimentConfig::quick();
        config.modules.push(crate::config::ModuleUnderTest {
            profile: simra_dram::VendorProfile::mfr_h_a_die(),
            seed: 8,
        });
        let samples =
            collect_group_samples(&session_for(&config), 4, |_, g, _| Some(g.n_rows() as f64));
        assert_eq!(samples.len(), 2 * config.groups_per_module());
        assert!(samples.iter().all(|s| *s == 4.0));
    }

    #[test]
    fn results_are_deterministic() {
        let session = session_for(&ExperimentConfig::quick());
        let a = collect_group_samples(&session, 8, |_, g, _| Some(g.local_rows[0] as f64));
        let b = collect_group_samples(&session, 8, |_, g, _| Some(g.local_rows[0] as f64));
        assert_eq!(a, b);
    }

    #[test]
    fn none_results_are_skipped() {
        let config = ExperimentConfig::quick();
        let samples = collect_group_samples(&session_for(&config), 2, |_, g, _| {
            (g.local_rows[0] % 2 == 0).then_some(1.0)
        });
        assert!(samples.len() < config.groups_per_module());
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let mut config = ExperimentConfig::quick();
        config.modules.push(crate::config::ModuleUnderTest {
            profile: simra_dram::VendorProfile::mfr_m_e_die(),
            seed: 9,
        });
        // The op consumes RNG state and reads module identity, so any
        // stream or scheduling difference would show.
        let op = |setup: &mut TestSetup, g: &GroupSpec, rng: &mut StdRng| {
            let first = g.local_rows[0] as f64;
            Some(first + rng.gen::<f64>() + setup.module().seed() as f64 * 1e-6)
        };
        let parallel = collect_group_samples(&session_for(&config), 8, op);
        let serial = collect_group_samples_serial(&config, 8, op);
        assert_eq!(parallel, serial);
        assert!(!parallel.is_empty());
    }

    #[test]
    fn identical_module_seeds_draw_distinct_streams() {
        // Regression: two modules with the same silicon seed used to get
        // identical RNG streams (and therefore identical samples).
        let mut config = ExperimentConfig::quick();
        let twin = config.modules[0].clone();
        config.modules.push(twin);
        let samples =
            collect_group_samples(&session_for(&config), 4, |_, _, rng| Some(rng.gen::<f64>()));
        let per_module = config.groups_per_module();
        assert_eq!(samples.len(), 2 * per_module);
        assert_ne!(
            samples[..per_module],
            samples[per_module..],
            "twin modules must not replay the same stream"
        );
    }

    #[test]
    fn module_index_zero_preserves_historical_stream() {
        let config = ExperimentConfig::quick();
        let m = &config.modules[0];
        let legacy = config.seed ^ m.seed.rotate_left(17) ^ ((8u64) << 48);
        assert_eq!(module_stream_seed(&config, m, 0, 8), legacy);
        assert_ne!(module_stream_seed(&config, m, 1, 8), legacy);
    }

    /// An op that exercises RNG state, group identity, and module
    /// identity — any stream divergence shows in the samples.
    fn probe_op(setup: &mut TestSetup, g: &GroupSpec, rng: &mut StdRng) -> Option<f64> {
        Some(g.local_rows[0] as f64 + rng.gen::<f64>() + setup.module().seed() as f64 * 1e-6)
    }

    /// The sweep-shaped probe op: folds the point parameter in, so a
    /// point receiving the wrong parameters shows in the samples.
    fn sweep_probe_op(
        scale: &f64,
        setup: &mut TestSetup,
        g: &GroupSpec,
        rng: &mut StdRng,
    ) -> Option<f64> {
        probe_op(setup, g, rng).map(|s| s * scale)
    }

    /// A two-module quick-scale config (quick itself has one module,
    /// which never leaves the calling thread).
    fn two_module_config() -> ExperimentConfig {
        let mut config = ExperimentConfig::quick();
        config.modules.push(crate::config::ModuleUnderTest {
            profile: simra_dram::VendorProfile::mfr_m_e_die(),
            seed: 21,
        });
        config
    }

    #[test]
    fn panicking_observer_degrades_one_chain_and_spares_the_rest() {
        // A panic that escapes `run_slot`'s catch_unwind (the slot
        // observer runs outside it) used to abort the whole process via
        // the pool's re-raise. Now it degrades that module's chain to
        // per-slot panic failures while the other chains complete.
        let config = two_module_config();
        let points: Vec<SweepPoint<f64>> =
            [2u32, 4].iter().map(|&n| SweepPoint::new(n, 1.0)).collect();
        let clock = MockClock::new();
        let pool = FleetPool::new(2);
        let observer: SlotObserver<'_> = &|module, _point, _result| {
            if module == 0 {
                panic!("observer rejected module 0");
            }
        };
        let grid = run_sweep_grid_on(
            &pool,
            &session_for(&config),
            &points,
            FleetPolicy::default(),
            &clock,
            2,
            sweep_probe_op,
            None,
            Some(observer),
        );
        assert_eq!(grid.len(), 2);
        for slot in &grid[0] {
            match slot {
                Some(ModuleResult::Failed {
                    attempts: 1,
                    cause: FailureCause::Panic(msg),
                }) => assert!(msg.contains("observer rejected module 0"), "{msg}"),
                other => panic!("module 0 must degrade to panic failures, got {other:?}"),
            }
        }
        for slot in &grid[1] {
            assert!(
                matches!(slot, Some(ModuleResult::Completed { .. })),
                "module 1 must complete despite module 0's chain panic: {slot:?}"
            );
        }
        // The pool survives for subsequent jobs.
        pool.run_tasks(3, 2, |_| {})
            .expect("pool usable after a chain panic");
    }

    #[test]
    fn sweep_grid_matches_per_point_fleet_runs() {
        // The whole grid at once — pooled rigs, no per-point barrier —
        // must be byte-identical to one run_fleet_with per point (fresh
        // rigs every time), which in turn matches the serial reference.
        let config = two_module_config();
        let points: Vec<SweepPoint<f64>> = [2u32, 4, 8, 4]
            .iter()
            .map(|&n| SweepPoint::new(n, f64::from(n) * 0.5))
            .collect();
        let clock = MockClock::new();
        let session = session_for(&config);
        for workers in [1usize, 2, 4] {
            let sweep = run_sweep_with(
                &session,
                &points,
                FleetPolicy::default(),
                &clock,
                workers,
                sweep_probe_op,
            );
            assert_eq!(sweep.len(), points.len());
            for (point, outcome) in points.iter().zip(&sweep) {
                let scale = point.params;
                let fresh = run_fleet_with(
                    &session,
                    point.n,
                    FleetPolicy::default(),
                    &clock,
                    workers,
                    |s: &mut TestSetup, g: &GroupSpec, r: &mut StdRng| {
                        sweep_probe_op(&scale, s, g, r)
                    },
                );
                assert_eq!(outcome, &fresh, "workers={workers} n={}", point.n);
                let serial: Vec<f64> = collect_group_samples_serial(&config, point.n, |s, g, r| {
                    sweep_probe_op(&scale, s, g, r)
                });
                assert_eq!(outcome.samples(), serial);
            }
        }
    }

    #[test]
    fn sweep_repeats_same_n_with_identical_streams() {
        // Two points at the same N replay the same per-module stream —
        // the exact behaviour of the historical per-point loop.
        let config = two_module_config();
        let points = [SweepPoint::new(4, ()), SweepPoint::new(4, ())];
        let outcomes = run_sweep_with(
            &session_for(&config),
            &points,
            FleetPolicy::default(),
            &MockClock::new(),
            2,
            |_: &(), s: &mut TestSetup, g: &GroupSpec, r: &mut StdRng| probe_op(s, g, r),
        );
        assert_eq!(outcomes[0], outcomes[1]);
    }

    #[test]
    fn empty_sweep_shapes() {
        let config = two_module_config();
        let none: [SweepPoint<()>; 0] = [];
        let outcomes = run_sweep(&session_for(&config), &none, |_, s, g, r| probe_op(s, g, r));
        assert!(outcomes.is_empty());
    }

    #[test]
    fn empty_plan_outcome_matches_baseline() {
        let mut config = ExperimentConfig::quick();
        let baseline = collect_group_samples_serial(&config, 6, probe_op);
        config.faults = Some(FaultPlan::default());
        let clock = MockClock::new();
        let session = session_for(&config);
        let outcome = run_fleet_with(&session, 6, FleetPolicy::default(), &clock, 2, probe_op);
        assert_eq!(outcome.ok_modules(), 1);
        assert_eq!(outcome.into_samples(), baseline);
        assert_eq!(collect_group_samples(&session, 6, probe_op), baseline);
    }

    #[test]
    fn retry_on_reused_rig_replays_baseline_samples() {
        // Regression for the unified setup path: a retry after a
        // transient fault runs on the *reused* rig — dirtied by the
        // partial first attempt — and must still produce byte-identical
        // samples, because reset_for_reuse restores the fresh state and
        // the fault-free retry takes the exact baseline code path (the
        // plan is empty apart from the transient module event).
        let mut config = ExperimentConfig::quick();
        let baseline = collect_group_samples_serial(&config, 4, probe_op);
        config.faults = Some(FaultPlan {
            modules: vec![ModuleFault {
                module_index: 0,
                kind: ModuleFaultKind::Dropout {
                    // Trip *after* group 1 ran, so the first attempt has
                    // written real voltage state into the rig.
                    at_group: 1,
                    recover_after_attempts: Some(1),
                },
            }],
            ..FaultPlan::default()
        });
        let clock = MockClock::new();
        let outcome = run_fleet_with(
            &session_for(&config),
            4,
            FleetPolicy::default(),
            &clock,
            1,
            probe_op,
        );
        match &outcome.slots[0] {
            ModuleResult::Completed { samples, attempts } => {
                assert_eq!(*attempts, 2);
                assert_eq!(
                    samples[..],
                    baseline[..],
                    "reused rig must replay the stream"
                );
            }
            other => panic!("transient dropout must heal on retry, got {other:?}"),
        }
    }

    #[test]
    fn dropout_module_degrades_gracefully() {
        let mut config = ExperimentConfig::quick();
        config.modules.push(crate::config::ModuleUnderTest {
            profile: simra_dram::VendorProfile::mfr_h_a_die(),
            seed: 8,
        });
        let baseline = collect_group_samples_serial(&config, 4, probe_op);
        let per_module = config.groups_per_module();
        let mut faulted = config.clone();
        faulted.faults = Some(FaultPlan {
            modules: vec![ModuleFault {
                module_index: 1,
                kind: ModuleFaultKind::Dropout {
                    at_group: 0,
                    recover_after_attempts: None,
                },
            }],
            ..FaultPlan::default()
        });
        let clock = MockClock::new();
        let session = session_for(&faulted);
        for workers in [1, 2] {
            let outcome = run_fleet_with(
                &session,
                4,
                FleetPolicy::default(),
                &clock,
                workers,
                probe_op,
            );
            assert_eq!(outcome.slots.len(), 2);
            match &outcome.slots[0] {
                ModuleResult::Completed { samples, attempts } => {
                    assert_eq!(*attempts, 1);
                    assert_eq!(samples[..], baseline[..per_module]);
                }
                other => panic!("healthy module must complete, got {other:?}"),
            }
            match &outcome.slots[1] {
                ModuleResult::Failed { attempts, cause } => {
                    assert_eq!(*attempts, 3, "permanent dropout exhausts all attempts");
                    assert_eq!(*cause, FailureCause::Dropout { at_group: 0 });
                }
                other => panic!("dropped module must fail, got {other:?}"),
            }
            assert_eq!(
                outcome.describe(),
                "1/2 modules completed; module 1 dropped out at group 0 after 3 attempts"
            );
            assert_eq!(outcome.samples(), baseline[..per_module]);
        }
    }

    #[test]
    fn injected_panic_is_isolated_and_retried() {
        let mut config = ExperimentConfig::quick();
        let baseline = collect_group_samples_serial(&config, 4, probe_op);
        config.faults = Some(FaultPlan {
            modules: vec![ModuleFault {
                module_index: 0,
                kind: ModuleFaultKind::PanicAt { at_group: 1 },
            }],
            ..FaultPlan::default()
        });
        let clock = MockClock::new();
        let outcome = run_fleet_with(
            &session_for(&config),
            4,
            FleetPolicy::default(),
            &clock,
            1,
            probe_op,
        );
        match &outcome.slots[0] {
            ModuleResult::Completed { samples, attempts } => {
                assert_eq!(*attempts, 2, "first attempt panics, second completes");
                assert_eq!(samples[..], baseline[..], "retry replays the same stream");
            }
            other => panic!("panic must heal on retry, got {other:?}"),
        }
    }

    #[test]
    fn transient_dropout_recovers_after_configured_attempts() {
        let mut config = ExperimentConfig::quick();
        let baseline = collect_group_samples_serial(&config, 4, probe_op);
        config.faults = Some(FaultPlan {
            modules: vec![ModuleFault {
                module_index: 0,
                kind: ModuleFaultKind::Dropout {
                    at_group: 1,
                    recover_after_attempts: Some(2),
                },
            }],
            ..FaultPlan::default()
        });
        let clock = MockClock::new();
        let outcome = run_fleet_with(
            &session_for(&config),
            4,
            FleetPolicy::default(),
            &clock,
            1,
            probe_op,
        );
        match &outcome.slots[0] {
            ModuleResult::Completed { samples, attempts } => {
                assert_eq!(*attempts, 3);
                assert_eq!(samples[..], baseline[..]);
            }
            other => panic!("transient dropout must heal, got {other:?}"),
        }
    }

    #[test]
    fn deadline_is_fatal_not_retried() {
        let mut config = ExperimentConfig::quick();
        config.faults = Some(FaultPlan {
            modules: vec![ModuleFault {
                module_index: 0,
                kind: ModuleFaultKind::Hang {
                    at_group: 0,
                    stall_ms: 10.0,
                },
            }],
            deadline_ms: Some(5.0),
            ..FaultPlan::default()
        });
        let policy = FleetPolicy {
            deadline_ms: Some(5.0),
            ..FleetPolicy::default()
        };
        // The mock clock never moves: only the *charged* stall can trip
        // the deadline, so the outcome is deterministic.
        let clock = MockClock::new();
        let outcome = run_fleet_with(&session_for(&config), 2, policy, &clock, 1, probe_op);
        match &outcome.slots[0] {
            ModuleResult::Failed { attempts, cause } => {
                assert_eq!(*attempts, 1, "a blown deadline must not be retried");
                match cause {
                    FailureCause::DeadlineExceeded {
                        budget_ms,
                        spent_ms,
                    } => {
                        assert_eq!(*budget_ms, 5.0);
                        assert!(*spent_ms >= 10.0);
                    }
                    other => panic!("expected a deadline failure, got {other:?}"),
                }
            }
            other => panic!("hang past the budget must fail the task, got {other:?}"),
        }
    }

    #[test]
    fn backoff_is_charged_against_the_deadline() {
        let mut config = ExperimentConfig::quick();
        // A permanent dropout forces retries; each retry's backoff charge
        // accumulates until the 25 ms budget bursts (10 + 20 > 25 on the
        // third attempt) even though no wall-clock time passes.
        config.faults = Some(FaultPlan {
            modules: vec![ModuleFault {
                module_index: 0,
                kind: ModuleFaultKind::Dropout {
                    at_group: 0,
                    recover_after_attempts: Some(9),
                },
            }],
            ..FaultPlan::default()
        });
        let policy = FleetPolicy {
            max_attempts: 10,
            backoff_base_ms: 10.0,
            deadline_ms: Some(25.0),
        };
        let clock = MockClock::new();
        let outcome = run_fleet_with(&session_for(&config), 2, policy, &clock, 1, probe_op);
        match &outcome.slots[0] {
            ModuleResult::Failed { attempts, cause } => {
                assert_eq!(*attempts, 3);
                assert!(matches!(cause, FailureCause::DeadlineExceeded { .. }));
            }
            other => panic!("accumulated backoff must trip the deadline, got {other:?}"),
        }
    }

    #[test]
    fn worker_count_override_clamps() {
        // Pure-function coverage of the SIMRA_THREADS resolution; no
        // process-global env mutation (which races with the parallel
        // test harness).
        assert_eq!(worker_count_from(Some("3"), 8), 3);
        assert_eq!(
            worker_count_from(Some("3"), 2),
            2,
            "never more workers than tasks"
        );
        assert_eq!(
            worker_count_from(Some("0"), 8),
            1,
            "zero clamps to one worker"
        );
        assert_eq!(worker_count_from(Some(" 4 "), 8), 4, "whitespace trimmed");
        assert!(
            worker_count_from(Some("not-a-number"), 8) >= 1,
            "junk falls back to core count"
        );
        assert!(worker_count_from(None, 8) >= 1);
        assert_eq!(worker_count_from(None, 0), 1);
        assert_eq!(worker_count_from(Some("99"), 0), 1);
    }

    #[test]
    fn backoff_charge_grows_then_saturates() {
        assert_eq!(backoff_charge_ms(10.0, 2), 10.0);
        assert_eq!(backoff_charge_ms(10.0, 3), 20.0);
        assert_eq!(backoff_charge_ms(10.0, 4), 40.0);
        assert_eq!(backoff_charge_ms(10.0, 31), 10.0 * 2f64.powi(29));
        // At and beyond the cap the charge saturates instead of
        // overflowing the old `1u32 << (attempt - 2)` shift (attempt 34)
        // or racing to infinity.
        let cap = 10.0 * 2f64.powi(BACKOFF_EXPONENT_CAP as i32);
        assert_eq!(backoff_charge_ms(10.0, 32), cap);
        assert_eq!(backoff_charge_ms(10.0, 34), cap);
        assert_eq!(backoff_charge_ms(10.0, 64), cap);
        assert_eq!(backoff_charge_ms(10.0, u32::MAX), cap);
        assert!(backoff_charge_ms(10.0, u32::MAX).is_finite());
    }

    #[test]
    fn many_attempts_do_not_overflow_the_backoff_shift() {
        // Regression: with max_attempts = 64 a permanent dropout used to
        // reach attempt 34, where `1u32 << 32` panicked in debug builds
        // and wrapped (collapsing the charge) in release builds.
        let mut config = ExperimentConfig::quick();
        config.faults = Some(FaultPlan {
            modules: vec![ModuleFault {
                module_index: 0,
                kind: ModuleFaultKind::Dropout {
                    at_group: 0,
                    recover_after_attempts: None,
                },
            }],
            ..FaultPlan::default()
        });
        let policy = FleetPolicy {
            max_attempts: 64,
            backoff_base_ms: 10.0,
            deadline_ms: None,
        };
        let clock = MockClock::new();
        let outcome = run_fleet_with(&session_for(&config), 2, policy, &clock, 1, probe_op);
        match &outcome.slots[0] {
            ModuleResult::Failed { attempts, cause } => {
                assert_eq!(*attempts, 64, "all attempts consumed, none overflowed");
                assert_eq!(*cause, FailureCause::Dropout { at_group: 0 });
            }
            other => panic!("permanent dropout must exhaust retries, got {other:?}"),
        }
    }

    #[test]
    fn session_coverage_accumulates_and_resets() {
        let mut config = two_module_config();
        config.faults = Some(FaultPlan {
            modules: vec![ModuleFault {
                module_index: 0,
                kind: ModuleFaultKind::Dropout {
                    at_group: 0,
                    recover_after_attempts: None,
                },
            }],
            ..FaultPlan::default()
        });
        let clock = MockClock::new();
        let session = session_for(&config);
        run_fleet_with(&session, 2, FleetPolicy::default(), &clock, 1, probe_op);
        // Coverage is per-session now, so the counts are exact even with
        // other tests running fleets concurrently in this process.
        let (coverage, failures) = session.take_coverage();
        assert_eq!(coverage.tasks, 2);
        assert_eq!(coverage.completed, 1);
        assert_eq!(coverage.failed, 1);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("dropped out"), "{}", failures[0]);
        assert!(coverage.describe().contains("module tasks completed"));
        // Taking resets the accumulator.
        let (reset, none) = session.take_coverage();
        assert_eq!(reset, FleetCoverage::default());
        assert!(none.is_empty());
    }

    #[test]
    fn sweep_under_chaotic_faults_matches_per_point_runs() {
        // Rig reuse must stay invisible when every fault class is armed:
        // cell overlays (reused overlays vs freshly derived ones),
        // transient dropouts (retry on a dirty rig), panics (rig
        // forfeiture), hangs and deadlines (charged time).
        let mut config = two_module_config();
        config.faults = Some(FaultPlan {
            seed: 0xC0C0,
            cells: Some(simra_faults::CellFaultSpec {
                seed: 0xC0C0,
                stuck_per_million: 80.0,
                weak_per_million: 40.0,
                weak_leak_multiplier: 3.0,
                sense_offset_shift: 0.0,
            }),
            modules: vec![
                ModuleFault {
                    module_index: 0,
                    kind: ModuleFaultKind::PanicAt { at_group: 1 },
                },
                ModuleFault {
                    module_index: 1,
                    kind: ModuleFaultKind::Dropout {
                        at_group: 2,
                        recover_after_attempts: Some(1),
                    },
                },
            ],
            vpp_droop: None,
            deadline_ms: None,
        });
        let points: Vec<SweepPoint<()>> = [4u32, 8, 4]
            .iter()
            .map(|&n| SweepPoint::new(n, ()))
            .collect();
        let clock = MockClock::new();
        let op = |_: &(), s: &mut TestSetup, g: &GroupSpec, r: &mut StdRng| probe_op(s, g, r);
        let session = session_for(&config);
        let reference = run_sweep_with(&session, &points, FleetPolicy::default(), &clock, 1, op);
        for workers in [2usize, 4] {
            let sweep = run_sweep_with(
                &session,
                &points,
                FleetPolicy::default(),
                &clock,
                workers,
                op,
            );
            assert_eq!(sweep, reference, "workers={workers}");
        }
        for (point, outcome) in points.iter().zip(&reference) {
            let fresh = run_fleet_with(
                &session,
                point.n,
                FleetPolicy::default(),
                &clock,
                2,
                probe_op,
            );
            assert_eq!(outcome, &fresh, "n={}", point.n);
        }
    }
}
