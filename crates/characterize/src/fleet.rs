//! Parallel execution of one experiment across the module fleet.
//!
//! Work is one *task per module*, executed by a bounded work-stealing
//! pool: `available_parallelism` workers pull module tasks from a shared
//! injector and steal from each other, so a paper-scale run (18 modules,
//! or hundreds in a scaled-up fleet) never spawns more threads than the
//! host has cores — unlike the previous design, which scoped one
//! unbounded thread per module.
//!
//! The task granularity is deliberately the module, not the row group:
//! each module's task replays the exact sequential semantics the fleet
//! has always had — seed one `StdRng` per `(module, N)`, draw the group
//! sample from it, then run `op` group-by-group *continuing the same
//! stream*. Splitting a module's groups into independent work items would
//! require giving each group its own RNG stream, changing every sampled
//! value the experiments produce. Keeping the per-module stream intact
//! makes the executor swap invisible: `repro quick` output is
//! byte-identical to the one-thread-per-module implementation, and the
//! parallel pool is bit-identical to the serial reference
//! ([`collect_group_samples_serial`]) regardless of scheduling, because
//! every task writes into a slot pre-indexed by module position.
//!
//! Each task mounts a fresh [`TestSetup`]; that is cheap because module
//! construction only creates empty lazy banks and subarray materialization
//! hits the silicon cache (`simra_dram::silicon`), which shares one
//! variation stamp per (seed, bank, subarray) across the whole sweep.

use std::num::NonZeroUsize;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use rand::rngs::StdRng;
use rand::SeedableRng;

use simra_bender::TestSetup;
use simra_core::rowgroup::{sample_groups, GroupSpec};
use simra_dram::DramModule;

use crate::config::{ExperimentConfig, ModuleUnderTest};

/// Seed of the per-(module, N) stream that draws the module's groups and
/// then feeds `op` for every group. The module *index* is mixed in on top
/// of the module's silicon seed: two modules deliberately configured with
/// twinned silicon (same `m.seed`) must still draw distinct groups and
/// data, or the fleet would test the same thing twice and report it as
/// two samples. Index 0 contributes nothing, preserving the historical
/// single-module (quick-scale) streams bit-for-bit.
fn module_stream_seed(
    config: &ExperimentConfig,
    module: &ModuleUnderTest,
    index: usize,
    n: u32,
) -> u64 {
    config.seed
        ^ module.seed.rotate_left(17)
        ^ ((n as u64) << 48)
        ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs one module's full task: mount the module, seed its stream, sample
/// its groups, and run `op` over them sequentially on that stream — the
/// exact loop the one-thread-per-module implementation ran.
fn run_module<F>(config: &ExperimentConfig, index: usize, n: u32, op: &F) -> Vec<f64>
where
    F: Fn(&mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64>,
{
    let module = &config.modules[index];
    let mut setup = TestSetup::with_module(DramModule::new(module.profile.clone(), module.seed));
    let mut rng = StdRng::seed_from_u64(module_stream_seed(config, module, index, n));
    let groups = sample_groups(
        setup.module().geometry(),
        n,
        config.banks,
        config.subarrays_per_bank,
        config.groups_per_subarray,
        &mut rng,
    );
    groups
        .iter()
        .filter_map(|g| op(&mut setup, g, &mut rng))
        .collect()
}

/// Worker count: one per core, never more than there are module tasks.
fn executor_threads(tasks: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(tasks)
        .max(1)
}

/// Pulls the next task index: local queue first, then the shared
/// injector, then stealing from the other workers.
fn next_task(
    local: &Worker<usize>,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
    id: usize,
) -> Option<usize> {
    if let Some(index) = local.pop() {
        return Some(index);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(index) => return Some(index),
            Steal::Retry => continue,
            Steal::Empty => {}
        }
        let mut retry = false;
        for (other, stealer) in stealers.iter().enumerate() {
            if other == id {
                continue;
            }
            match stealer.steal() {
                Steal::Success(index) => return Some(index),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Executes every module task on the stealing pool; results land in slots
/// indexed by module position, so ordering is schedule-independent.
fn run_stealing<F>(config: &ExperimentConfig, n: u32, workers: usize, op: &F) -> Vec<Vec<f64>>
where
    F: Fn(&mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    let tasks = config.modules.len();
    let injector = Injector::new();
    for index in 0..tasks {
        injector.push(index);
    }
    let locals: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = locals.iter().map(Worker::stealer).collect();
    let mut slots: Vec<Vec<f64>> = vec![Vec::new(); tasks];
    let finished: Vec<Vec<(usize, Vec<f64>)>> = crossbeam::thread::scope(|scope| {
        let injector = &injector;
        let stealers = &stealers[..];
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(id, local)| {
                scope.spawn(move |_| {
                    let mut done = Vec::new();
                    while let Some(index) = next_task(&local, injector, stealers, id) {
                        done.push((index, run_module(config, index, n, op)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    for (index, samples) in finished.into_iter().flatten() {
        slots[index] = samples;
    }
    slots
}

/// Runs `op` on every sampled row group of `n` simultaneously activated
/// rows, across all configured modules, on the work-stealing pool.
///
/// Returns all per-group success rates, ordered by module then group —
/// bit-identical to [`collect_group_samples_serial`] regardless of worker
/// count or scheduling. Groups for which `op` returns `None` (e.g. an
/// operation the part cannot perform) are skipped.
pub fn collect_group_samples<F>(config: &ExperimentConfig, n: u32, op: F) -> Vec<f64>
where
    F: Fn(&mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    let tasks = config.modules.len();
    let workers = executor_threads(tasks);
    if workers <= 1 {
        return collect_group_samples_serial(config, n, op);
    }
    run_stealing(config, n, workers, &op)
        .into_iter()
        .flatten()
        .collect()
}

/// The serial reference implementation: same module tasks, same RNG
/// streams, executed on the calling thread. Exists so tests (and
/// sceptical readers) can check the parallel executor changes nothing but
/// wall-clock.
pub fn collect_group_samples_serial<F>(config: &ExperimentConfig, n: u32, op: F) -> Vec<f64>
where
    F: Fn(&mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64>,
{
    (0..config.modules.len())
        .flat_map(|index| run_module(config, index, n, &op))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn samples_cover_all_modules_and_groups() {
        let mut config = ExperimentConfig::quick();
        config.modules.push(crate::config::ModuleUnderTest {
            profile: simra_dram::VendorProfile::mfr_h_a_die(),
            seed: 8,
        });
        let samples = collect_group_samples(&config, 4, |_, g, _| Some(g.n_rows() as f64));
        assert_eq!(samples.len(), 2 * config.groups_per_module());
        assert!(samples.iter().all(|s| *s == 4.0));
    }

    #[test]
    fn results_are_deterministic() {
        let config = ExperimentConfig::quick();
        let a = collect_group_samples(&config, 8, |_, g, _| Some(g.local_rows[0] as f64));
        let b = collect_group_samples(&config, 8, |_, g, _| Some(g.local_rows[0] as f64));
        assert_eq!(a, b);
    }

    #[test]
    fn none_results_are_skipped() {
        let config = ExperimentConfig::quick();
        let samples = collect_group_samples(&config, 2, |_, g, _| {
            (g.local_rows[0] % 2 == 0).then_some(1.0)
        });
        assert!(samples.len() < config.groups_per_module());
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let mut config = ExperimentConfig::quick();
        config.modules.push(crate::config::ModuleUnderTest {
            profile: simra_dram::VendorProfile::mfr_m_e_die(),
            seed: 9,
        });
        // The op consumes RNG state and reads module identity, so any
        // stream or scheduling difference would show.
        let op = |setup: &mut TestSetup, g: &GroupSpec, rng: &mut StdRng| {
            let first = g.local_rows[0] as f64;
            Some(first + rng.gen::<f64>() + setup.module().seed() as f64 * 1e-6)
        };
        let parallel = collect_group_samples(&config, 8, op);
        let serial = collect_group_samples_serial(&config, 8, op);
        assert_eq!(parallel, serial);
        assert!(!parallel.is_empty());
    }

    #[test]
    fn identical_module_seeds_draw_distinct_streams() {
        // Regression: two modules with the same silicon seed used to get
        // identical RNG streams (and therefore identical samples).
        let mut config = ExperimentConfig::quick();
        let twin = config.modules[0].clone();
        config.modules.push(twin);
        let samples = collect_group_samples(&config, 4, |_, _, rng| Some(rng.gen::<f64>()));
        let per_module = config.groups_per_module();
        assert_eq!(samples.len(), 2 * per_module);
        assert_ne!(
            samples[..per_module],
            samples[per_module..],
            "twin modules must not replay the same stream"
        );
    }

    #[test]
    fn module_index_zero_preserves_historical_stream() {
        let config = ExperimentConfig::quick();
        let m = &config.modules[0];
        let legacy = config.seed ^ m.seed.rotate_left(17) ^ ((8u64) << 48);
        assert_eq!(module_stream_seed(&config, m, 0, 8), legacy);
        assert_ne!(module_stream_seed(&config, m, 1, 8), legacy);
    }
}
