//! Parallel execution of one experiment across the module fleet.

use rand::rngs::StdRng;
use rand::SeedableRng;

use simra_bender::TestSetup;
use simra_core::rowgroup::{sample_groups, GroupSpec};
use simra_dram::DramModule;

use crate::config::ExperimentConfig;

/// Runs `op` on every sampled row group of `n` simultaneously activated
/// rows, across all configured modules — one thread per module (each
/// module is an independent device, exactly like the paper's rig testing
/// modules one at a time).
///
/// Returns all per-group success rates, ordered by module then group, so
/// results are deterministic regardless of thread scheduling. Groups for
/// which `op` returns `None` (e.g. an operation the part cannot perform)
/// are skipped.
pub fn collect_group_samples<F>(config: &ExperimentConfig, n: u32, op: F) -> Vec<f64>
where
    F: Fn(&mut TestSetup, &GroupSpec, &mut StdRng) -> Option<f64> + Send + Sync,
{
    let op = &op;
    let results: Vec<Vec<f64>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = config
            .modules
            .iter()
            .map(|m| {
                scope.spawn(move |_| {
                    let mut setup =
                        TestSetup::with_module(DramModule::new(m.profile.clone(), m.seed));
                    // Distinct, reproducible stream per (module, N).
                    let mut rng = StdRng::seed_from_u64(
                        config.seed ^ m.seed.rotate_left(17) ^ ((n as u64) << 48),
                    );
                    let groups = sample_groups(
                        setup.module().geometry(),
                        n,
                        config.banks,
                        config.subarrays_per_bank,
                        config.groups_per_subarray,
                        &mut rng,
                    );
                    groups
                        .iter()
                        .filter_map(|g| op(&mut setup, g, &mut rng))
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("module worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_cover_all_modules_and_groups() {
        let mut config = ExperimentConfig::quick();
        config.modules.push(crate::config::ModuleUnderTest {
            profile: simra_dram::VendorProfile::mfr_h_a_die(),
            seed: 8,
        });
        let samples = collect_group_samples(&config, 4, |_, g, _| Some(g.n_rows() as f64));
        assert_eq!(samples.len(), 2 * config.groups_per_module());
        assert!(samples.iter().all(|s| *s == 4.0));
    }

    #[test]
    fn results_are_deterministic() {
        let config = ExperimentConfig::quick();
        let a = collect_group_samples(&config, 8, |_, g, _| Some(g.local_rows[0] as f64));
        let b = collect_group_samples(&config, 8, |_, g, _| Some(g.local_rows[0] as f64));
        assert_eq!(a, b);
    }

    #[test]
    fn none_results_are_skipped() {
        let config = ExperimentConfig::quick();
        let samples = collect_group_samples(&config, 2, |_, g, _| {
            (g.local_rows[0] % 2 == 0).then_some(1.0)
        });
        assert!(samples.len() < config.groups_per_module());
    }
}
