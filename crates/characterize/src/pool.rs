//! A persistent worker pool for fleet runs.
//!
//! The previous executor design (`crossbeam::thread::scope` inside every
//! `run_fleet` call) spawned and joined a full set of OS threads *per
//! sweep point* — a paper figure with 30 points paid 30 spawn/join
//! rounds and put a scheduling barrier between consecutive points. The
//! [`FleetPool`] instead owns its worker threads for the lifetime of the
//! process (or of an explicitly constructed pool) and lets callers
//! *borrow* them per job.
//!
//! # Design
//!
//! A job is a set of `total` indexed tasks plus a caller-provided
//! `Fn(usize)` that executes one task. Jobs go through a small shared
//! queue; workers and the *calling thread itself* claim task indices from
//! an atomic cursor, so a job always makes progress even if every pool
//! worker is busy with another job (the caller is claimer number one).
//! `max_claimers` bounds how many threads may work one job, which is how
//! `run_fleet_with(.., workers, ..)` keeps its explicit worker-count
//! semantics on a shared pool.
//!
//! # Safety
//!
//! The job body is type-erased into a thin `*const ()` plus a
//! monomorphised `unsafe fn` trampoline so one queue can carry jobs of
//! any closure type without boxing per call. The pointer refers into the
//! calling frame of [`FleetPool::run_tasks`], which is sound because:
//!
//! * `run_tasks` does not return until the completion latch fires, and
//!   the latch fires only after **all** `total` tasks have finished;
//! * a task index is only ever claimed while `next < total`; after the
//!   latch, every claim attempt sees an exhausted cursor and touches
//!   nothing but atomics owned by the `Arc<JobCore>` itself;
//! * results are handed back through caller-owned sync cells (the fleet
//!   uses one `Mutex` slot per task), whose unlock/lock pairs — together
//!   with the latch's mutex — order task writes before the caller's
//!   reads.
//!
//! Task panics are caught, recorded (first message wins), and reported
//! to the caller as a typed [`PoolError`] after the job drains, so a
//! panicking task can never poison a pool worker, hang the caller, or
//! abort the calling process — a sweep coordinator degrades the
//! affected module chain instead of losing the whole shard.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Why a pooled job did not complete cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// At least one task panicked. The job still drained — every other
    /// task ran — and the pool's workers survive; this carries the first
    /// recorded panic message.
    TaskPanicked {
        /// Message extracted from the first panic payload.
        message: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::TaskPanicked { message } => {
                write!(f, "fleet pool task panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Outcome flags of one job, behind the completion-latch mutex.
struct JobState {
    /// All `total` tasks have finished (successfully or by panic).
    done: bool,
    /// First recorded task panic message, re-raised by the caller.
    panic: Option<String>,
}

/// One job: an indexed task grid shared between the caller and however
/// many pool workers register on it.
struct JobCore {
    /// Number of task indices in `0..total`.
    total: usize,
    /// Claim cursor; `fetch_add` hands out each index exactly once.
    next: AtomicUsize,
    /// Tasks not yet finished; the thread that drops this to zero fires
    /// the completion latch.
    pending: AtomicUsize,
    /// Threads currently entitled to claim from this job (the caller
    /// counts as one). Only mutated under the pool's queue lock.
    claimers: AtomicUsize,
    /// Upper bound on `claimers`.
    max_claimers: usize,
    /// Completion latch (also carries the panic verdict).
    state: Mutex<JobState>,
    done_cv: Condvar,
    /// Type-erased pointer to the caller's task closure. Valid for the
    /// whole job lifetime — see the module-level safety argument.
    data: *const (),
    /// Monomorphised trampoline reconstituting `data`'s closure type.
    run: unsafe fn(*const (), usize),
}

// SAFETY: `data` is only dereferenced through `run` for claimed indices,
// all of which happen-before the completion latch that `run_tasks` blocks
// on; the closure behind it is `Sync` (bound on `run_tasks`), so shared
// invocation from several threads is sound. Everything else in the struct
// is atomics and sync primitives.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Whether every task index has been handed out.
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::SeqCst) >= self.total
    }

    /// Registers the calling worker as a claimer if the job has claimer
    /// capacity left. Must be called under the pool queue lock (claimer
    /// accounting is lock-protected; the atomic is for shared storage).
    fn try_register(&self) -> bool {
        let claimers = self.claimers.load(Ordering::Relaxed);
        if claimers >= self.max_claimers {
            return false;
        }
        self.claimers.store(claimers + 1, Ordering::Relaxed);
        true
    }

    /// Claims and runs task indices until the cursor is exhausted. Every
    /// finished task decrements `pending`; whoever finishes the last task
    /// fires the completion latch.
    fn run_claimed(&self) {
        loop {
            let index = self.next.fetch_add(1, Ordering::SeqCst);
            if index >= self.total {
                return;
            }
            let outcome =
                panic::catch_unwind(AssertUnwindSafe(|| unsafe { (self.run)(self.data, index) }));
            if let Err(payload) = outcome {
                let message = panic_message(payload.as_ref());
                let mut state = self.lock_state();
                if state.panic.is_none() {
                    state.panic = Some(message);
                }
            }
            if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let mut state = self.lock_state();
                state.done = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, JobState> {
        // A panic while holding the state lock can only come from the
        // allocator; inherit the guard rather than deadlocking.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The pool's shared job queue.
struct PoolQueue {
    jobs: VecDeque<Arc<JobCore>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signalled when a job is pushed or the pool shuts down.
    jobs_cv: Condvar,
}

impl PoolShared {
    fn lock_queue(&self) -> MutexGuard<'_, PoolQueue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A persistent work-stealing worker pool for fleet jobs. Construct one
/// per scope with [`FleetPool::new`] (joined on drop), or borrow the
/// process-wide [`FleetPool::global`] — which is what [`crate::run_fleet`]
/// and [`crate::run_sweep`] do, so a figure run reuses one set of threads
/// across all of its sweep points instead of spawning per point.
pub struct FleetPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for FleetPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetPool")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl FleetPool {
    /// Spawns a pool with `threads` persistent workers. Zero threads is
    /// a valid pool: every job then runs inline on the calling thread
    /// (the caller is always a claimer).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            jobs_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("simra-fleet-{id}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn fleet pool worker")
            })
            .collect();
        FleetPool { shared, handles }
    }

    /// The process-wide pool, sized so that (with the calling thread
    /// participating) a job can use every core, and small machines still
    /// get the 4-way concurrency the schedule-independence tests exercise.
    pub fn global() -> &'static FleetPool {
        static POOL: OnceLock<FleetPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1);
            FleetPool::new(cores.saturating_sub(1).max(3))
        })
    }

    /// Number of persistent worker threads (the caller adds one more
    /// claimer on top during [`FleetPool::run_tasks`]).
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `task(index)` for every `index in 0..total`, with at most
    /// `max_claimers` threads (calling thread included) working the job.
    /// Blocks until every task has finished; if any task panicked, the
    /// first recorded panic comes back as [`PoolError::TaskPanicked`]
    /// after the job drains — the remaining tasks still run, no worker
    /// is lost, and the pool stays usable. Callers decide whether a
    /// poisoned task degrades (fleet chains fill failure slots) or is
    /// fatal.
    #[must_use = "a task panic is reported here, not re-raised"]
    pub fn run_tasks<F>(&self, total: usize, max_claimers: usize, task: F) -> Result<(), PoolError>
    where
        F: Fn(usize) + Sync,
    {
        if total == 0 {
            return Ok(());
        }
        /// Reconstitutes the concrete closure type erased into `data`.
        unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), index: usize) {
            let task = unsafe { &*data.cast::<F>() };
            task(index);
        }
        let core = Arc::new(JobCore {
            total,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(total),
            claimers: AtomicUsize::new(1),
            max_claimers: max_claimers.max(1),
            state: Mutex::new(JobState {
                done: false,
                panic: None,
            }),
            done_cv: Condvar::new(),
            data: (&task as *const F).cast::<()>(),
            run: trampoline::<F>,
        });
        let shared_with_workers = core.max_claimers > 1 && total > 1 && !self.handles.is_empty();
        if shared_with_workers {
            let mut queue = self.shared.lock_queue();
            queue.jobs.push_back(Arc::clone(&core));
            drop(queue);
            self.shared.jobs_cv.notify_all();
        }
        core.run_claimed();
        let panic_msg = {
            let mut state = core.lock_state();
            while !state.done {
                state = core.done_cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            state.panic.take()
        };
        if shared_with_workers {
            // Drop the queue's reference so no dangling `data` pointer
            // outlives this frame (workers that already hold the Arc can
            // only observe an exhausted cursor — see module docs).
            let mut queue = self.shared.lock_queue();
            queue.jobs.retain(|job| !Arc::ptr_eq(job, &core));
        }
        match panic_msg {
            Some(message) => Err(PoolError::TaskPanicked { message }),
            None => Ok(()),
        }
    }
}

impl Drop for FleetPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.lock_queue();
            queue.shutdown = true;
        }
        self.shared.jobs_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker body: take the first job with both unclaimed tasks and claimer
/// capacity, work it dry, repeat; park on the condvar when idle.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if queue.shutdown {
                    return;
                }
                queue.jobs.retain(|job| !job.exhausted());
                if let Some(job) = queue.jobs.iter().find(|job| job.try_register()) {
                    break Arc::clone(job);
                }
                queue = shared
                    .jobs_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        job.run_claimed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = FleetPool::new(3);
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run_tasks(hits.len(), 4, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        })
        .expect("no task panicked");
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = FleetPool::new(1);
        pool.run_tasks(0, 4, |_| panic!("must not run"))
            .expect("an empty job cannot panic");
    }

    #[test]
    fn single_claimer_runs_inline_and_in_order() {
        let pool = FleetPool::new(2);
        let order = Mutex::new(Vec::new());
        let caller = std::thread::current().id();
        pool.run_tasks(8, 1, |i| {
            assert_eq!(
                std::thread::current().id(),
                caller,
                "max_claimers=1 must stay on the calling thread"
            );
            order.lock().unwrap().push(i);
        })
        .expect("no task panicked");
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = FleetPool::new(2);
        for round in 0..20u64 {
            let sum = AtomicU64::new(0);
            pool.run_tasks(10, 3, |i| {
                sum.fetch_add(round * 100 + i as u64, Ordering::SeqCst);
            })
            .expect("no task panicked");
            assert_eq!(sum.load(Ordering::SeqCst), round * 1000 + 45);
        }
    }

    #[test]
    fn task_panic_is_a_typed_error_and_the_pool_stays_usable() {
        let pool = FleetPool::new(2);
        let completed = AtomicU64::new(0);
        let err = pool
            .run_tasks(16, 4, |i| {
                if i == 3 {
                    panic!("task 3 exploded");
                }
                completed.fetch_add(1, Ordering::SeqCst);
            })
            .expect_err("the panic must surface as a PoolError, not unwind");
        let PoolError::TaskPanicked { message } = &err;
        assert!(message.contains("task 3 exploded"), "{err}");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            15,
            "the other tasks still run"
        );
        // The pool survives: workers were never poisoned, and the next
        // job completes cleanly.
        let sum = AtomicU64::new(0);
        pool.run_tasks(4, 4, |i| {
            sum.fetch_add(i as u64, Ordering::SeqCst);
        })
        .expect("pool is usable after a task panic");
        assert_eq!(sum.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn zero_thread_pool_still_completes_jobs() {
        let pool = FleetPool::new(0);
        let sum = AtomicU64::new(0);
        pool.run_tasks(32, 8, |i| {
            sum.fetch_add(i as u64, Ordering::SeqCst);
        })
        .expect("no task panicked");
        assert_eq!(sum.load(Ordering::SeqCst), 496);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = FleetPool::global();
        let b = FleetPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 3);
    }

    #[test]
    fn concurrent_jobs_from_many_threads_all_finish() {
        let pool = FleetPool::new(3);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let sum = AtomicU64::new(0);
                    pool.run_tasks(25, 2, |i| {
                        sum.fetch_add(i as u64, Ordering::SeqCst);
                    })
                    .expect("no task panicked");
                    assert_eq!(sum.load(Ordering::SeqCst), 300);
                });
            }
        });
    }
}
