//! # simra-characterize
//!
//! Experiment runners that regenerate every table and figure of the
//! paper's evaluation (§4–§7): one public `figNN_*` function per figure,
//! each returning a [`report::Table`] whose rows/series match what the
//! paper plots, printed the way the paper reports them.
//!
//! Scale: the paper tests 24 K row groups per module across 18 modules
//! with 10⁴ trials each. [`config::ExperimentConfig::default`] uses a
//! reduced but statistically adequate population and *reports the
//! reduction* via [`config::ExperimentConfig::describe_scale`]; nothing is
//! silently truncated. `paper_scale()` reproduces the full population for
//! long runs.
//!
//! # Example
//!
//! Every figure runner executes against a [`session::Session`] — the
//! owned context carrying the campaign's config, telemetry recorder,
//! backends, and checkpoint state. Sessions are isolated: several can
//! run concurrently in one process, each byte-identical to running
//! alone.
//!
//! ```no_run
//! use simra_characterize::config::ExperimentConfig;
//! use simra_characterize::majx::fig7_majx_patterns;
//! use simra_characterize::Session;
//!
//! let session = Session::new(ExperimentConfig::quick());
//! let table = fig7_majx_patterns(&session);
//! println!("{table}");
//! ```

pub mod activation;
pub mod backend;
pub mod checkpoint;
pub mod config;
pub mod fleet;
pub mod majx;
pub mod mrc;
pub mod observations;
pub mod perdie;
pub mod pool;
pub mod power;
pub mod report;
pub mod session;
pub mod shard;
pub mod spice;
pub mod takeaways;

pub use activation::{
    fig3_activation_timing, fig4a_activation_temperature, fig4b_activation_voltage,
};
pub use backend::{sweep_trial_samples, trial_point, BackendSet, TrialPoint};
pub use checkpoint::{
    merge_sweep_journals, run_sweep_checkpointed_on, run_sweep_checkpointed_sharded_on, slot_shard,
    CheckpointError, CheckpointSession,
};
pub use config::ExperimentConfig;
pub use fleet::{
    collect_group_samples, collect_group_samples_serial, run_fleet, run_fleet_with, run_sweep,
    run_sweep_on, run_sweep_with, sweep_group_samples, FailureCause, FleetClock, FleetCoverage,
    FleetOutcome, FleetPolicy, MockClock, ModuleResult, SweepPoint, SystemClock,
};
pub use majx::{fig6_maj3_timing, fig7_majx_patterns, fig8_majx_temperature, fig9_majx_voltage};
pub use mrc::{fig10_mrc_timing, fig11_mrc_patterns, fig12a_mrc_temperature, fig12b_mrc_voltage};
pub use observations::{check_observations, ObservationReport};
pub use perdie::per_die_breakdown;
pub use power::fig5_power;
pub use report::Table;
pub use session::Session;
pub use shard::{MergeReport, ShardCoordinator, ShardError};
pub use spice::fig15_spice;
pub use takeaways::{derive_takeaways, scoreboard_quorum, TakeawayReport};
