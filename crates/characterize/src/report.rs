//! Text tables that print the same rows/series the paper's figures plot.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One row of a result table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (e.g. `"t1=1.5 t2=3.0"` or `"MAJ5"`).
    pub label: String,
    /// One value per column.
    pub values: Vec<f64>,
}

/// A labelled numeric table: the textual equivalent of one figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (figure id + caption).
    pub title: String,
    /// A scale note (group population, reductions vs the paper).
    pub scale_note: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        scale_note: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Table {
            title: title.into(),
            scale_note: scale_note.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match the {} columns",
            self.columns.len()
        );
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Looks up a value by row label and column header.
    pub fn get(&self, row_label: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|r| r.label == row_label)?;
        row.values.get(col).copied()
    }

    /// Renders as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.label);
            for v in &r.values {
                out.push(',');
                out.push_str(&format!("{v:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.title)?;
        if !self.scale_note.is_empty() {
            writeln!(f, "    [{}]", self.scale_note)?;
        }
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(5))
            .max()
            .unwrap_or(5);
        write!(f, "{:label_w$}", "")?;
        for c in &self.columns {
            write!(f, " {c:>10}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:label_w$}", r.label)?;
            for v in &r.values {
                write!(f, " {v:>10.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Fig. X", "3 groups", vec!["N=2".into(), "N=4".into()]);
        t.push_row("t1=1.5", vec![99.0, 98.5]);
        t.push_row("t1=3.0", vec![99.9, 99.8]);
        t
    }

    #[test]
    fn get_by_labels() {
        let t = table();
        assert_eq!(t.get("t1=1.5", "N=4"), Some(98.5));
        assert_eq!(t.get("nope", "N=4"), None);
        assert_eq!(t.get("t1=1.5", "N=8"), None);
    }

    #[test]
    fn csv_rendering() {
        let csv = table().to_csv();
        assert!(csv.starts_with("label,N=2,N=4\n"));
        assert!(csv.contains("t1=3.0,99.9000,99.8000"));
    }

    #[test]
    fn display_contains_title_and_values() {
        let s = table().to_string();
        assert!(s.contains("Fig. X"));
        assert!(s.contains("99.900"));
        assert!(s.contains("[3 groups]"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        table().push_row("bad", vec![1.0]);
    }
}
