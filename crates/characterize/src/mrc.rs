//! Figures 10–12: Multi-RowCopy robustness under timing, data pattern,
//! temperature, and wordline voltage.
//!
//! Each figure submits its whole (timing, pattern, operating-point,
//! destination-count) grid as one [`run_sweep`](crate::fleet::run_sweep) call; rows are assembled
//! from the per-point sample sets, which arrive in the enumeration order
//! of the points.
//!
//! Per-trial Multi-RowCopy success evaluation rides the fused analog
//! reductions in `simra_core::multirowcopy` (per-column latch mask
//! hashed once, `commit_survival_into` with a reused buffer) rather than
//! re-deriving per-cell state here.

use simra_core::metrics::{mean, pct, BoxStats};
use simra_dram::ApaTiming;
use simra_exec::{MrcSource, TrialSpec};

use crate::backend::{sweep_trial_samples, trial_point, TrialPoint};
use crate::config::ExperimentConfig;
use crate::fleet::SweepPoint;
use crate::report::Table;
use crate::session::Session;

/// Destination counts of §6 (N-row activation copies to N − 1 rows).
pub const DEST_COUNTS: [u32; 5] = [1, 3, 7, 15, 31];
/// t1 grid of Fig. 10 (ns) — 36 ns ≈ tRAS is the paper's best.
pub const FIG10_T1: [f64; 4] = [1.5, 3.0, 6.0, 36.0];
/// t2 grid of Fig. 10 (ns).
pub const FIG10_T2: [f64; 2] = [1.5, 3.0];

/// Source-data patterns of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MrcPattern {
    /// All zeros.
    AllZeros,
    /// All ones (the pattern that dips at 31 destinations, Obs. 16).
    AllOnes,
    /// Uniform random.
    Random,
}

impl std::fmt::Display for MrcPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MrcPattern::AllZeros => "all-0s",
            MrcPattern::AllOnes => "all-1s",
            MrcPattern::Random => "random",
        };
        f.write_str(s)
    }
}

impl MrcPattern {
    /// The backend-level source this pattern names. The random pattern
    /// draws its image bit by bit ([`MrcSource::RandomBits`]), matching
    /// the figure runners' historical RNG stream.
    pub fn source(self) -> MrcSource {
        match self {
            MrcPattern::AllZeros => MrcSource::AllZeros,
            MrcPattern::AllOnes => MrcSource::AllOnes,
            MrcPattern::Random => MrcSource::RandomBits,
        }
    }
}

/// One Multi-RowCopy sweep point. The activated row count on the
/// enclosing [`SweepPoint`] is `dests + 1` (source + destinations).
fn mrc_point(
    config: &ExperimentConfig,
    dests: u32,
    timing: ApaTiming,
    pattern: MrcPattern,
    temperature_c: Option<f64>,
    vpp_v: Option<f64>,
) -> SweepPoint<TrialPoint> {
    let mut spec = TrialSpec::multirowcopy(timing, pattern.source());
    if let Some(t) = temperature_c {
        spec = spec.at_temperature(t);
    }
    if let Some(v) = vpp_v {
        spec = spec.at_vpp(v);
    }
    trial_point(config, dests + 1, spec)
}

/// Fig. 10: Multi-RowCopy success distribution vs (t1, t2) per
/// destination count. Values in percent.
pub fn fig10_mrc_timing(session: &Session) -> Table {
    session.run_figure("fig10", |session| {
        let config = session.config();
        let columns = DEST_COUNTS.iter().map(|d| format!("dests={d}")).collect();
        let mut table = Table::new(
            "Fig. 10: Multi-RowCopy success vs (t1, t2) and destination count",
            config.describe_scale(),
            columns,
        );
        let points: Vec<SweepPoint<TrialPoint>> = FIG10_T1
            .iter()
            .flat_map(|&t1| {
                FIG10_T2.iter().flat_map(move |&t2| {
                    let timing = ApaTiming::from_ns(t1, t2);
                    DEST_COUNTS
                        .iter()
                        .map(move |&d| mrc_point(config, d, timing, MrcPattern::Random, None, None))
                })
            })
            .collect();
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for &t1 in &FIG10_T1 {
            for &t2 in &FIG10_T2 {
                let mut means = Vec::new();
                let mut mins = Vec::new();
                for _ in &DEST_COUNTS {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    let stats = BoxStats::from_samples(&samples);
                    means.push(pct(stats.mean));
                    mins.push(pct(stats.min));
                }
                table.push_row(format!("t1={t1} t2={t2} mean"), means);
                table.push_row(format!("t1={t1} t2={t2} min"), mins);
            }
        }
        table
    })
}

/// Fig. 11: Multi-RowCopy success per source data pattern (best timing).
/// Values in percent.
pub fn fig11_mrc_patterns(session: &Session) -> Table {
    session.run_figure("fig11", |session| {
        let config = session.config();
        let columns = DEST_COUNTS.iter().map(|d| format!("dests={d}")).collect();
        let mut table = Table::new(
            "Fig. 11: Multi-RowCopy data-pattern dependence",
            config.describe_scale(),
            columns,
        );
        let patterns = [
            MrcPattern::AllZeros,
            MrcPattern::AllOnes,
            MrcPattern::Random,
        ];
        let points: Vec<SweepPoint<TrialPoint>> = patterns
            .iter()
            .flat_map(|&pattern| {
                DEST_COUNTS.iter().map(move |&d| {
                    mrc_point(
                        config,
                        d,
                        ApaTiming::best_for_multi_row_copy(),
                        pattern,
                        None,
                        None,
                    )
                })
            })
            .collect();
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for pattern in patterns {
            let values = DEST_COUNTS
                .iter()
                .map(|_| {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    pct(mean(&samples))
                })
                .collect();
            table.push_row(pattern.to_string(), values);
        }
        table
    })
}

/// Fig. 12a: Multi-RowCopy success vs temperature (random source data).
/// Values in percent.
pub fn fig12a_mrc_temperature(session: &Session) -> Table {
    session.run_figure("fig12a", |session| {
        let config = session.config();
        let temps = crate::activation::TEMPERATURES_C;
        let columns = DEST_COUNTS.iter().map(|d| format!("dests={d}")).collect();
        let mut table = Table::new(
            "Fig. 12a: Multi-RowCopy success vs temperature",
            config.describe_scale(),
            columns,
        );
        let points: Vec<SweepPoint<TrialPoint>> = temps
            .iter()
            .flat_map(|&t| {
                DEST_COUNTS.iter().map(move |&d| {
                    mrc_point(
                        config,
                        d,
                        ApaTiming::best_for_multi_row_copy(),
                        MrcPattern::Random,
                        Some(t),
                        None,
                    )
                })
            })
            .collect();
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for &t in &temps {
            let values = DEST_COUNTS
                .iter()
                .map(|_| {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    pct(mean(&samples))
                })
                .collect();
            table.push_row(format!("{t} C"), values);
        }
        table
    })
}

/// Fig. 12b: Multi-RowCopy success vs wordline voltage (random source
/// data). Values in percent.
pub fn fig12b_mrc_voltage(session: &Session) -> Table {
    session.run_figure("fig12b", |session| {
        let config = session.config();
        let vpps = crate::activation::VPP_LEVELS_V;
        let columns = DEST_COUNTS.iter().map(|d| format!("dests={d}")).collect();
        let mut table = Table::new(
            "Fig. 12b: Multi-RowCopy success vs wordline voltage",
            config.describe_scale(),
            columns,
        );
        let points: Vec<SweepPoint<TrialPoint>> = vpps
            .iter()
            .flat_map(|&v| {
                DEST_COUNTS.iter().map(move |&d| {
                    mrc_point(
                        config,
                        d,
                        ApaTiming::best_for_multi_row_copy(),
                        MrcPattern::Random,
                        None,
                        Some(v),
                    )
                })
            })
            .collect();
        let mut sweeps = sweep_trial_samples(session, &points).into_iter();
        for &v in &vpps {
            let values = DEST_COUNTS
                .iter()
                .map(|_| {
                    let samples = sweeps.next().expect("one sample set per sweep point");
                    pct(mean(&samples))
                })
                .collect();
            table.push_row(format!("{v} V"), values);
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_session() -> Session {
        Session::new(ExperimentConfig::quick())
    }

    #[test]
    fn fig10_best_timing_is_nearly_perfect_and_t1_min_halves() {
        let t = fig10_mrc_timing(&quick_session());
        let mut p = crate::observations::SeriesProbe::default();
        let best = p.get(&t, "t1=36 t2=3 mean", "dests=31");
        let bad = p.get(&t, "t1=1.5 t2=3 mean", "dests=31");
        assert!(p.missing().is_empty(), "missing series: {:?}", p.missing());
        assert!(best > 99.5, "Obs. 14: {best}");
        assert!(
            bad < best - 30.0,
            "Obs. 15: t1=1.5 ns collapse, {bad} vs {best}"
        );
    }

    #[test]
    fn fig11_all_ones_dips_at_31() {
        let t = fig11_mrc_patterns(&quick_session());
        let mut p = crate::observations::SeriesProbe::default();
        let ones = p.get(&t, "all-1s", "dests=31");
        let zeros = p.get(&t, "all-0s", "dests=31");
        assert!(p.missing().is_empty(), "missing series: {:?}", p.missing());
        assert!(zeros >= ones, "Obs. 16: {zeros} vs {ones}");
        assert!(zeros - ones < 3.0, "but only slightly (paper 0.79 %)");
    }

    #[test]
    fn fig12_env_effects_are_small() {
        let session = quick_session();
        let temp = fig12a_mrc_temperature(&session);
        let d = "dests=15";
        let mut p = crate::observations::SeriesProbe::default();
        let t50 = p.get(&temp, "50 C", d);
        let t90 = p.get(&temp, "90 C", d);
        let volt = fig12b_mrc_voltage(&session);
        let v25 = p.get(&volt, "2.5 V", d);
        let v21 = p.get(&volt, "2.1 V", d);
        assert!(p.missing().is_empty(), "missing series: {:?}", p.missing());
        assert!((t50 - t90).abs() < 1.0, "Obs. 17: {t50} vs {t90}");
        assert!(
            v25 - v21 >= 0.0 && v25 - v21 < 3.0,
            "Obs. 18: {v25} vs {v21}"
        );
    }
}
