//! The paper's 7 takeaway lessons, derived from the observation
//! scoreboard (each takeaway condenses specific observations).

use serde::{Deserialize, Serialize};

use crate::observations::ObservationReport;

/// One evaluated takeaway.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TakeawayReport {
    /// Takeaway number (1–7).
    pub id: u8,
    /// The lesson, condensed.
    pub lesson: String,
    /// Observations it rests on.
    pub from_observations: Vec<u8>,
    /// Whether every underlying observation held.
    pub holds: bool,
}

impl std::fmt::Display for TakeawayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Takeaway {} [{}] {} (from Obs. {:?})",
            self.id,
            if self.holds { "ok" } else { "XX" },
            self.lesson,
            self.from_observations
        )
    }
}

/// Derives the 7 takeaways from an observation scoreboard (as produced
/// by [`crate::check_observations`]).
pub fn derive_takeaways(observations: &[ObservationReport]) -> Vec<TakeawayReport> {
    let holds = |ids: &[u8]| {
        ids.iter().all(|id| {
            observations
                .iter()
                .find(|o| o.id == *id)
                .map(|o| o.holds)
                .unwrap_or(false)
        })
    };
    let mk = |id: u8, lesson: &str, from: &[u8]| TakeawayReport {
        id,
        lesson: lesson.into(),
        from_observations: from.to_vec(),
        holds: holds(from),
    };
    vec![
        mk(
            1,
            "COTS chips simultaneously activate 2–32 rows at very high success",
            &[1],
        ),
        mk(
            2,
            "many-row activation is highly resilient to temperature and V_PP",
            &[3, 4],
        ),
        mk(3, "COTS chips can perform MAJ5, MAJ7, and MAJ9", &[8]),
        mk(
            4,
            "input replication significantly raises MAJX success",
            &[6, 10],
        ),
        mk(
            5,
            "V_PP/temperature barely move MAJX; data pattern moves it a lot",
            &[9, 11, 13],
        ),
        mk(6, "one row copies to 1–31 rows at very high success", &[14]),
        mk(
            7,
            "Multi-RowCopy is highly resilient to pattern, temperature, and V_PP",
            &[16, 17, 18],
        ),
    ]
}

/// Scales a scoreboard pass bar to the quorum of modules that actually
/// completed: with `ok_modules` of `total_modules` surviving, a run is
/// held to `full_bar · ok / total` (integer floor) instead of the full
/// bar. A fleet that lost modules to injected (or real) faults is judged
/// on the evidence it could still gather, not punished for slots the
/// executor already reported as failed.
pub fn scoreboard_quorum(full_bar: usize, ok_modules: usize, total_modules: usize) -> usize {
    if total_modules == 0 {
        return 0;
    }
    full_bar * ok_modules.min(total_modules) / total_modules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_observations;
    use crate::config::ExperimentConfig;
    use crate::session::Session;

    #[test]
    fn all_takeaways_hold_at_quick_scale() {
        let obs = check_observations(&Session::new(ExperimentConfig::quick()));
        let takeaways = derive_takeaways(&obs);
        assert_eq!(takeaways.len(), 7);
        let failing: Vec<String> = takeaways
            .iter()
            .filter(|t| !t.holds)
            .map(|t| t.to_string())
            .collect();
        assert!(
            failing.is_empty(),
            "takeaways not reproduced:\n{}",
            failing.join("\n")
        );
    }

    #[test]
    fn takeaways_depend_on_their_observations() {
        let mut obs = check_observations(&Session::new(ExperimentConfig::quick()));
        // Break Obs. 1 artificially: Takeaway 1 must fall with it.
        obs.iter_mut()
            .find(|o| o.id == 1)
            .expect("obs 1 exists")
            .holds = false;
        let takeaways = derive_takeaways(&obs);
        assert!(!takeaways[0].holds);
        assert!(takeaways[2].holds, "unrelated takeaways stand");
    }

    #[test]
    fn quorum_scales_the_bar() {
        assert_eq!(scoreboard_quorum(18, 18, 18), 18, "full fleet, full bar");
        assert_eq!(scoreboard_quorum(18, 17, 18), 17);
        assert_eq!(scoreboard_quorum(18, 9, 18), 9);
        assert_eq!(scoreboard_quorum(18, 0, 18), 0);
        assert_eq!(scoreboard_quorum(18, 1, 1), 18, "single-module quick run");
        assert_eq!(scoreboard_quorum(18, 0, 0), 0, "empty fleet is vacuous");
        assert_eq!(scoreboard_quorum(18, 20, 18), 18, "ok is clamped to total");
    }

    #[test]
    fn display_renders_verdict() {
        let t = TakeawayReport {
            id: 3,
            lesson: "x".into(),
            from_observations: vec![8],
            holds: true,
        };
        assert!(t.to_string().contains("Takeaway 3 [ok]"));
    }
}
