//! Per-die-revision breakdown (extended-version style): the headline
//! operations measured separately for each Table-1 profile, exposing the
//! Mfr. H vs Mfr. M differences (Frac support, biased amps, variation
//! scales) the fleet averages blur together.
//!
//! The four profiles are independent measurements (each mounts its own
//! module and seeds its own RNG stream), so they run as four tasks on
//! the persistent [`FleetPool`]; rows are still emitted in Table-1
//! order, so the table is byte-identical to the sequential loop.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use simra_bender::TestSetup;
use simra_core::metrics::{mean, pct};
use simra_core::rowgroup::sample_groups;
use simra_dram::vendor::paper_fleet;
use simra_dram::{ApaTiming, DataPattern, DramModule, Manufacturer, VendorProfile};
use simra_exec::{MrcSource, TrialSpec};

use crate::fleet::executor_threads;
use crate::pool::FleetPool;
use crate::report::Table;
use crate::session::Session;

/// One profile's row: mount the profile, draw its group sample, and
/// measure every headline operation on the shared per-profile stream.
fn per_die_row(session: &Session, profile: &VendorProfile) -> Vec<f64> {
    let config = session.config();
    // Pool threads arrive here carrying whatever slot epoch their last
    // task left behind; a fresh epoch makes stateful backends (hybrid)
    // start clean, so the row is scheduling-independent.
    simra_exec::slot::begin();
    let mut setup = TestSetup::with_module(DramModule::new(profile.clone(), 4242));
    setup.set_engine_counters(session.engine_counters().clone());
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xD1E);
    let groups = sample_groups(
        setup.module().geometry(),
        32,
        config.banks,
        config.subarrays_per_bank,
        config.groups_per_subarray,
        &mut rng,
    );
    let backend = session.dispatch(config.backend);

    let act_spec = TrialSpec::activation(ApaTiming::best_for_activation());
    let act: Vec<f64> = groups
        .iter()
        .filter_map(|g| backend.run_trial(&act_spec, &mut setup, g, &mut rng))
        .collect();
    let mut row = vec![pct(mean(&act))];
    for x in [3usize, 5, 7, 9] {
        if x >= 9 && profile.manufacturer == Manufacturer::M {
            row.push(f64::NAN);
            continue;
        }
        let spec = TrialSpec::majx(x, ApaTiming::best_for_majx(), DataPattern::Random);
        let vals: Vec<f64> = groups
            .iter()
            .filter_map(|g| backend.run_trial(&spec, &mut setup, g, &mut rng))
            .collect();
        row.push(pct(mean(&vals)));
    }
    // Historically the per-die MRC image was drawn word-at-a-time
    // (`BitRow::random`), unlike the figure runners' bit-at-a-time
    // convention — `RandomRow` keeps that stream.
    let mrc_spec =
        TrialSpec::multirowcopy(ApaTiming::best_for_multi_row_copy(), MrcSource::RandomRow);
    let mrc: Vec<f64> = groups
        .iter()
        .filter_map(|g| backend.run_trial(&mrc_spec, &mut setup, g, &mut rng))
        .collect();
    row.push(pct(mean(&mrc)));
    row
}

/// Per-die table: one row per Table-1 profile, columns for 32-row
/// activation, MAJ3/5/7/9 @32 (random pattern), and Multi-RowCopy @31
/// destinations, all in percent (NaN where the part cannot perform the
/// operation, e.g. MAJ9 on Mfr. M).
pub fn per_die_breakdown(session: &Session) -> Table {
    session.run_figure("per_die_breakdown", |session| {
        let columns = vec![
            "ACT32".to_string(),
            "MAJ3".into(),
            "MAJ5".into(),
            "MAJ7".into(),
            "MAJ9".into(),
            "MRC31".into(),
        ];
        let mut table = Table::new(
            "Per-die breakdown: headline operations per Table-1 profile",
            session.config().describe_scale(),
            columns,
        );
        let profiles: Vec<VendorProfile> = paper_fleet().into_iter().map(|e| e.profile).collect();
        let rows: Vec<Mutex<Option<Vec<f64>>>> =
            profiles.iter().map(|_| Mutex::new(None)).collect();
        let verdict =
            FleetPool::global().run_tasks(profiles.len(), executor_threads(profiles.len()), |i| {
                *rows[i].lock().unwrap_or_else(|e| e.into_inner()) =
                    Some(per_die_row(session, &profiles[i]));
            });
        for (profile, slot) in profiles.iter().zip(rows) {
            // A panicking row task (reported via `verdict`, never
            // expected from this pure computation) degrades its row to
            // NaNs — the same rendering as an infeasible cell — instead
            // of aborting.
            let row = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| {
                    debug_assert!(verdict.is_err(), "row missing without a task panic");
                    vec![f64::NAN; 6]
                });
            table.push_row(profile.label(), row);
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn per_die_table_shows_vendor_differences() {
        let mut config = ExperimentConfig::quick();
        config.groups_per_subarray = 3;
        let t = per_die_breakdown(&Session::new(config));
        assert_eq!(t.rows.len(), 4, "one row per Table-1 profile");
        let mut p = crate::observations::SeriesProbe::default();
        // Mfr. M has no MAJ9 column; Mfr. H does.
        let m_e = "Mfr. M (E die, 16Gb x16)";
        let h_m = "Mfr. H (M die, 4Gb x8)";
        let m_e_maj9 = p.get(&t, m_e, "MAJ9");
        let h_m_maj9 = p.get(&t, h_m, "MAJ9");
        // MAJ7 exists on both vendors (vendor *ordering* needs more than
        // a quick-scale sample — the group spread dominates 3 groups).
        let h_m_maj7 = p.get(&t, h_m, "MAJ7");
        let m_e_maj7 = p.get(&t, m_e, "MAJ7");
        assert!(p.missing().is_empty(), "missing series: {:?}", p.missing());
        assert!(m_e_maj9.is_nan(), "Mfr. M MAJ9 must be infeasible");
        assert!(!h_m_maj9.is_nan(), "Mfr. H MAJ9 must be measured");
        assert!(h_m_maj7.is_finite());
        assert!(m_e_maj7.is_finite());
        // Everyone activates and copies well.
        for r in &t.rows {
            let act = r.values[0];
            let mrc = r.values[5];
            assert!(act > 97.0, "{}: ACT32 {act}", r.label);
            assert!(mrc > 97.0, "{}: MRC31 {mrc}", r.label);
        }
    }

    #[test]
    fn per_die_table_is_deterministic() {
        // The four profile tasks run in parallel on the pool; the table
        // must come out identical run to run regardless of scheduling.
        let mut config = ExperimentConfig::quick();
        config.groups_per_subarray = 3;
        let session = Session::new(config);
        let a = per_die_breakdown(&session);
        let b = per_die_breakdown(&session);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.label, rb.label);
            let same = ra
                .values
                .iter()
                .zip(&rb.values)
                .all(|(x, y)| (x.is_nan() && y.is_nan()) || x == y);
            assert!(
                same,
                "row {} differs: {:?} vs {:?}",
                ra.label, ra.values, rb.values
            );
        }
    }
}
