//! Minimal JSON rendering *and parsing* helpers: just enough to
//! serialize telemetry snapshots, scoreboards, and the characterize
//! crate's checkpoint documents without pulling a serialization
//! dependency into the workspace. Strings are escaped per RFC 8259;
//! non-finite numbers become `null` (JSON has no NaN/inf).
//!
//! The parser ([`Value::parse`]) is the read half of the same
//! conventions. Two deliberate properties matter to the checkpoint
//! layer:
//!
//! * **numbers keep their raw token** ([`Value::Num`] stores the
//!   original text), so a `u64` seed above 2^53 round-trips exactly and
//!   an `f64` rendered with Rust's shortest round-trip formatting
//!   parses back to the identical bit pattern;
//! * **errors carry a byte offset**, so a corrupt journal line reports
//!   *where* it went wrong instead of panicking.

use std::fmt::Write;

/// Renders `s` as a quoted JSON string, escaping quotes, backslashes,
/// and control characters.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number, or `null` when non-finite. Finite
/// values use Rust's shortest round-trip formatting, which is always a
/// valid JSON number.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits a decimal point for integral floats; that is still
        // valid JSON, so pass it through untouched.
        s
    } else {
        "null".to_string()
    }
}

/// Renders a JSON array from pre-rendered element strings.
pub fn array<I: IntoIterator<Item = String>>(elements: I) -> String {
    let mut out = String::from("[");
    for (i, e) in elements.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e);
    }
    out.push(']');
    out
}

/// Where and why a JSON parse failed. The offset is a byte index into
/// the input, so journal-corruption reports can point at the damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input position.
    pub offset: usize,
    /// Human-readable description of what was expected or found.
    pub detail: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.detail
        )
    }
}

impl std::error::Error for ParseError {}

/// A parsed JSON document. Object members keep their input order
/// (documents written by these helpers are deterministic, and keeping
/// order lets tests compare re-rendered output byte for byte). Numbers
/// keep their raw source token — see the module docs for why.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what non-finite floats render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw source token.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in input order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error (a journal line must be exactly one document).
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object member lookup (first match); `None` on missing key or
    /// non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number as `f64`. `null` maps back to NaN, inverting the
    /// render-side convention that non-finite floats become `null`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Null => Some(f64::NAN),
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an exact `u64` (rejects signs, fractions, and
    /// exponents — seeds and counters are written as plain integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// [`Value::as_u64`] narrowed to `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|v| u32::try_from(v).ok())
    }

    /// [`Value::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }
}

/// Deepest allowed array/object nesting. The parser recurses once per
/// level; without a cap a crafted or corrupted document of thousands of
/// `[`s would overflow the stack and abort instead of returning the
/// typed [`ParseError`] this module promises. Documents these helpers
/// write are a handful of levels deep, so 128 is generous headroom.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, detail: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            detail: detail.to_string(),
        }
    }

    /// Tracks entry into a container; errors past [`MAX_DEPTH`].
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.error(&format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("expected a JSON value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number token bytes are ASCII");
        if raw.parse::<f64>().is_err() {
            self.pos = start;
            return Err(self.error(&format!("malformed number '{raw}'")));
        }
        Ok(Value::Num(raw.to_string()))
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("non-ASCII in \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| self.error("bad hex in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("bad surrogate pair"))?
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.error("lone low surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through by consuming whole
                    // code points from the source slice.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peeked byte implies a char");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        assert_eq!(quote("µ-unicode"), "\"µ-unicode\"");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn arrays_join_elements() {
        assert_eq!(array(vec![]), "[]");
        assert_eq!(
            array(vec!["1".to_string(), "\"x\"".to_string()]),
            "[1,\"x\"]"
        );
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Value::parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(Value::parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let seed = u64::MAX - 7;
        let doc = format!("{{\"seed\":{seed}}}");
        let parsed = Value::parse(&doc).unwrap();
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn f64_shortest_form_round_trips_bitwise() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -0.0, 2.5e-17] {
            let parsed = Value::parse(&number(v)).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), v.to_bits());
        }
        // Non-finite renders as null and parses back as NaN.
        assert!(Value::parse(&number(f64::NAN))
            .unwrap()
            .as_f64()
            .unwrap()
            .is_nan());
    }

    #[test]
    fn parses_nested_documents_and_escapes() {
        let doc = r#"{"a":[1,2,{"b":"x\ny µ 😀"}],"c":null}"#;
        let v = Value::parse(doc).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x\ny µ 😀"));
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
        // quote() output parses back to the original string.
        let tricky = "a\"b\\c\nd\tµ";
        assert_eq!(Value::parse(&quote(tricky)).unwrap().as_str(), Some(tricky));
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for (doc, from_offset) in [
            ("{", 1),
            ("[1,", 3),
            ("{\"a\":}", 5),
            ("\"unterminated", 13),
            ("12 34", 3),
            ("nul", 0),
            ("{\"a\" 1}", 5),
            ("", 0),
            ("1e", 0),
        ] {
            let err = Value::parse(doc).expect_err(doc);
            assert!(
                err.offset >= from_offset.min(doc.len()),
                "{doc}: offset {} < {from_offset}",
                err.offset
            );
            assert!(err.to_string().contains("JSON parse error"));
        }
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // At the cap: parses fine.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Value::parse(&ok).is_ok());
        // One past the cap: typed error.
        let over = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = Value::parse(&over).unwrap_err();
        assert!(err.detail.contains("nesting"), "{err}");
        // Far past the cap (the crash case without the guard): still a
        // typed error, not an abort. Mixed containers count too.
        let bomb = "[{\"k\":".repeat(100_000) + "1" + &"}]".repeat(100_000);
        let err = Value::parse(&bomb).unwrap_err();
        assert!(err.detail.contains("nesting"), "{err}");
        // Sibling containers do not accumulate depth.
        let wide = format!("[{}]", vec!["[[1]]"; 64].join(","));
        assert!(Value::parse(&wide).is_ok());
    }

    #[test]
    fn narrowing_accessors_reject_out_of_range() {
        let v = Value::parse("4294967296").unwrap();
        assert_eq!(v.as_u32(), None);
        assert_eq!(v.as_u64(), Some(4_294_967_296));
        assert_eq!(Value::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Value::parse("1.5").unwrap().as_u64(), None);
    }
}
