//! Minimal JSON rendering helpers: just enough to serialize telemetry
//! snapshots and scoreboards without pulling a serialization dependency
//! into the workspace. Strings are escaped per RFC 8259; non-finite
//! numbers become `null` (JSON has no NaN/inf).

use std::fmt::Write;

/// Renders `s` as a quoted JSON string, escaping quotes, backslashes,
/// and control characters.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number, or `null` when non-finite. Finite
/// values use Rust's shortest round-trip formatting, which is always a
/// valid JSON number.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits a decimal point for integral floats; that is still
        // valid JSON, so pass it through untouched.
        s
    } else {
        "null".to_string()
    }
}

/// Renders a JSON array from pre-rendered element strings.
pub fn array<I: IntoIterator<Item = String>>(elements: I) -> String {
    let mut out = String::from("[");
    for (i, e) in elements.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        assert_eq!(quote("µ-unicode"), "\"µ-unicode\"");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn arrays_join_elements() {
        assert_eq!(array(vec![]), "[]");
        assert_eq!(
            array(vec!["1".to_string(), "\"x\"".to_string()]),
            "[1,\"x\"]"
        );
    }
}
