//! # simra-telemetry
//!
//! Zero-cost-when-disabled observability for the SiMRA stack: counters,
//! histograms, and monotonic-timed spans, aggregated by a thread-safe
//! [`Recorder`] into per-`(module, name)` series.
//!
//! The paper's credibility rests on knowing exactly what every module did
//! under which timings; the fleet executor retries, backs off, injects
//! faults, and trips deadlines — none of which used to be observable from
//! outside. This crate makes the whole stack report what it did without
//! ever changing *what it computes*:
//!
//! * **Disabled by default, zero cost when disabled.** Every recording
//!   call first reads one relaxed [`AtomicBool`]; when telemetry is off,
//!   that single load-and-branch is the entire cost — no clock reads, no
//!   locks, no allocation. Scientific output (figure tables, scoreboard)
//!   is byte-identical whether telemetry is enabled, disabled, or absent,
//!   because instruments only ever *observe* the computation.
//! * **Deterministic aggregation.** Series live in `BTreeMap`s keyed by
//!   `(module, name)`, so snapshots enumerate in one stable order, and
//!   counter values depend only on the work performed — not on worker
//!   count or scheduling (asserted by `crates/characterize/tests/
//!   telemetry.rs` across 1/2/4 workers).
//! * **Versioned export.** [`Snapshot::to_json`] hand-renders the
//!   aggregate as schema-versioned JSON (no external dependencies), and
//!   [`Snapshot::summary`] renders a human table for `--metrics`.
//!
//! # Example
//!
//! ```
//! use simra_telemetry as telemetry;
//!
//! let recorder = telemetry::Recorder::new();
//! recorder.enable();
//! let ops = recorder.counter("engine", "sense_ops");
//! ops.add(3);
//! {
//!     let _span = recorder.span("figure", "fig3");
//!     // ... timed work ...
//! }
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counters[0].value, 3);
//! assert_eq!(snap.spans[0].count, 1);
//! ```

pub mod json;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Version stamp embedded in every serialized snapshot; bump when the
/// JSON layout changes shape.
pub const SCHEMA_VERSION: u32 = 1;

/// Series key: the emitting module (e.g. `"fleet"`, `"engine"`,
/// `"figure"`) and the series name within it.
type Key = (String, String);

#[derive(Debug, Clone, Copy)]
struct HistData {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl HistData {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SpanData {
    count: u64,
    total_ms: f64,
    min_ms: f64,
    max_ms: f64,
}

impl SpanData {
    fn observe(&mut self, elapsed_ms: f64) {
        if self.count == 0 {
            self.min_ms = elapsed_ms;
            self.max_ms = elapsed_ms;
        } else {
            self.min_ms = self.min_ms.min(elapsed_ms);
            self.max_ms = self.max_ms.max(elapsed_ms);
        }
        self.count += 1;
        self.total_ms += elapsed_ms;
    }
}

#[derive(Default)]
struct RecorderInner {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<Key, Arc<Mutex<HistData>>>>,
    spans: Mutex<BTreeMap<Key, Arc<Mutex<SpanData>>>>,
}

/// A thread-safe telemetry aggregator. Cloning is cheap (shared state);
/// [`global`] returns the process-wide instance the production stack
/// reports into, and tests can build private recorders with
/// [`Recorder::new`].
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Recorder {
    /// A fresh, disabled recorder with no registered series.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off. Registered series and their values survive;
    /// only new recordings stop.
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or retrieves) the counter `module/name` and returns a
    /// handle. Registration is idempotent: every handle for the same key
    /// shares one cell. Registering while disabled is fine — the series
    /// appears in snapshots with value 0.
    pub fn counter(&self, module: &str, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("telemetry counters");
        let cell = map
            .entry((module.to_string(), name.to_string()))
            .or_default()
            .clone();
        Counter {
            recorder: self.inner.clone(),
            cell,
        }
    }

    /// Registers (or retrieves) the histogram `module/name`.
    pub fn histogram(&self, module: &str, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().expect("telemetry histograms");
        let cell = map
            .entry((module.to_string(), name.to_string()))
            .or_default()
            .clone();
        Histogram {
            recorder: self.inner.clone(),
            cell,
        }
    }

    /// Starts a span over `module/name`. The returned guard measures
    /// monotonic wall-clock from now until drop and folds the elapsed
    /// time into the span's series. When the recorder is disabled the
    /// guard is inert: no clock is read and nothing is recorded at drop.
    pub fn span(&self, module: &str, name: &str) -> Span {
        if !self.is_enabled() {
            return Span { live: None };
        }
        let cell = {
            let mut map = self.inner.spans.lock().expect("telemetry spans");
            map.entry((module.to_string(), name.to_string()))
                .or_default()
                .clone()
        };
        Span {
            live: Some((cell, Instant::now())),
        }
    }

    /// Resets every registered series to its empty state (counters to 0,
    /// histograms and spans to no observations). Registrations survive,
    /// so snapshot shape is stable across resets.
    pub fn reset(&self) {
        for cell in self
            .inner
            .counters
            .lock()
            .expect("telemetry counters")
            .values()
        {
            cell.store(0, Ordering::Relaxed);
        }
        for cell in self
            .inner
            .histograms
            .lock()
            .expect("telemetry histograms")
            .values()
        {
            *cell.lock().expect("telemetry histogram cell") = HistData::default();
        }
        for cell in self.inner.spans.lock().expect("telemetry spans").values() {
            *cell.lock().expect("telemetry span cell") = SpanData::default();
        }
    }

    /// A point-in-time copy of every registered series, deterministically
    /// ordered by `(module, name)`.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("telemetry counters")
            .iter()
            .map(|((module, name), cell)| CounterSnapshot {
                module: module.clone(),
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("telemetry histograms")
            .iter()
            .map(|((module, name), cell)| {
                let d = *cell.lock().expect("telemetry histogram cell");
                HistogramSnapshot {
                    module: module.clone(),
                    name: name.clone(),
                    count: d.count,
                    sum: d.sum,
                    min: d.min,
                    max: d.max,
                }
            })
            .collect();
        let spans = self
            .inner
            .spans
            .lock()
            .expect("telemetry spans")
            .iter()
            .map(|((module, name), cell)| {
                let d = *cell.lock().expect("telemetry span cell");
                SpanSnapshot {
                    module: module.clone(),
                    name: name.clone(),
                    count: d.count,
                    total_ms: d.total_ms,
                    min_ms: d.min_ms,
                    max_ms: d.max_ms,
                }
            })
            .collect();
        Snapshot {
            schema_version: SCHEMA_VERSION,
            enabled: self.is_enabled(),
            counters,
            histograms,
            spans,
        }
    }
}

/// Handle to one monotonically increasing counter series.
#[derive(Clone)]
pub struct Counter {
    recorder: Arc<RecorderInner>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` when the owning recorder is enabled; a single relaxed
    /// atomic load otherwise.
    pub fn add(&self, n: u64) {
        if self.recorder.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one (see [`Counter::add`]).
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Handle to one histogram series (count / sum / min / max).
#[derive(Clone)]
pub struct Histogram {
    recorder: Arc<RecorderInner>,
    cell: Arc<Mutex<HistData>>,
}

impl Histogram {
    /// Folds `value` in when the owning recorder is enabled.
    pub fn observe(&self, value: f64) {
        if self.recorder.enabled.load(Ordering::Relaxed) {
            self.cell
                .lock()
                .expect("telemetry histogram cell")
                .observe(value);
        }
    }
}

/// RAII guard for one timed span; records on drop. Inert (no clock read,
/// nothing recorded) when the recorder was disabled at creation.
pub struct Span {
    live: Option<(Arc<Mutex<SpanData>>, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((cell, started)) = self.live.take() {
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            cell.lock()
                .expect("telemetry span cell")
                .observe(elapsed_ms);
        }
    }
}

/// One counter series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Emitting module.
    pub module: String,
    /// Series name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram series in a snapshot. `min`/`max` are meaningless (and
/// serialized as `null`) while `count` is 0.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Emitting module.
    pub module: String,
    /// Series name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`+inf` when empty).
    pub min: f64,
    /// Largest observed value (`-inf` when empty).
    pub max: f64,
}

/// One span series in a snapshot (milliseconds of monotonic wall-clock).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Emitting module.
    pub module: String,
    /// Series name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Total elapsed across all spans (ms).
    pub total_ms: f64,
    /// Shortest span (ms); 0 when `count` is 0.
    pub min_ms: f64,
    /// Longest span (ms); 0 when `count` is 0.
    pub max_ms: f64,
}

/// Why a snapshot document was rejected by [`Snapshot::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The input is not well-formed JSON.
    Json(json::ParseError),
    /// The document's schema version is not the one this build writes.
    SchemaVersion {
        /// Version found in the document.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// A required member is missing or has the wrong type.
    Field {
        /// Name of the offending member.
        field: String,
        /// What was expected.
        detail: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Json(e) => write!(f, "telemetry snapshot: {e}"),
            SnapshotError::SchemaVersion { found, expected } => write!(
                f,
                "telemetry snapshot schema version {found} (this build reads version {expected})"
            ),
            SnapshotError::Field { field, detail } => {
                write!(f, "telemetry snapshot field '{field}': {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<json::ParseError> for SnapshotError {
    fn from(e: json::ParseError) -> Self {
        SnapshotError::Json(e)
    }
}

fn snapshot_field_error(field: &str, detail: &str) -> SnapshotError {
    SnapshotError::Field {
        field: field.into(),
        detail: detail.into(),
    }
}

/// A deterministic point-in-time copy of a recorder's series.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Value of [`SCHEMA_VERSION`] at capture.
    pub schema_version: u32,
    /// Whether the recorder was enabled at capture.
    pub enabled: bool,
    /// All counter series, ordered by `(module, name)`.
    pub counters: Vec<CounterSnapshot>,
    /// All histogram series, ordered by `(module, name)`.
    pub histograms: Vec<HistogramSnapshot>,
    /// All span series, ordered by `(module, name)`.
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// Renders the snapshot as schema-versioned JSON. Non-finite floats
    /// (empty-histogram min/max) become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"schema_version\":{},\"enabled\":{},\"counters\":[",
            self.schema_version, self.enabled
        ));
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"module\":{},\"name\":{},\"value\":{}}}",
                json::quote(&c.module),
                json::quote(&c.name),
                c.value
            ));
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"module\":{},\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                json::quote(&h.module),
                json::quote(&h.name),
                h.count,
                json::number(h.sum),
                json::number(h.min),
                json::number(h.max)
            ));
        }
        out.push_str("],\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"module\":{},\"name\":{},\"count\":{},\"total_ms\":{},\"min_ms\":{},\"max_ms\":{}}}",
                json::quote(&s.module),
                json::quote(&s.name),
                s.count,
                json::number(s.total_ms),
                json::number(s.min_ms),
                json::number(s.max_ms)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses a snapshot rendered by [`Snapshot::to_json`]. `null`
    /// histogram bounds (the empty-series rendering) are restored to the
    /// in-memory `+inf`/`-inf` neutral elements, so parse∘render is the
    /// identity on snapshots this build writes. Unknown schema versions
    /// and malformed members are typed errors, never panics.
    pub fn parse(input: &str) -> Result<Snapshot, SnapshotError> {
        let doc = json::Value::parse(input)?;
        let version = doc
            .get("schema_version")
            .and_then(json::Value::as_u32)
            .ok_or_else(|| snapshot_field_error("schema_version", "expected a u32"))?;
        if version != SCHEMA_VERSION {
            return Err(SnapshotError::SchemaVersion {
                found: version,
                expected: SCHEMA_VERSION,
            });
        }
        let enabled = doc
            .get("enabled")
            .and_then(json::Value::as_bool)
            .ok_or_else(|| snapshot_field_error("enabled", "expected a bool"))?;
        let series = |node: &json::Value, member: &str| -> Result<String, SnapshotError> {
            node.get(member)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| snapshot_field_error(member, "expected a string"))
        };
        let count_of = |node: &json::Value| -> Result<u64, SnapshotError> {
            node.get("count")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| snapshot_field_error("count", "expected a u64"))
        };
        // `null` (non-finite at render time) maps back to the stated
        // neutral element; anything else must be a number.
        let float_or =
            |node: &json::Value, member: &str, empty: f64| -> Result<f64, SnapshotError> {
                match node.get(member) {
                    Some(json::Value::Null) => Ok(empty),
                    Some(v) => v
                        .as_f64()
                        .ok_or_else(|| snapshot_field_error(member, "expected a number or null")),
                    None => Err(snapshot_field_error(member, "expected a number or null")),
                }
            };
        let list = |member: &str| -> Result<&[json::Value], SnapshotError> {
            doc.get(member)
                .and_then(json::Value::as_array)
                .ok_or_else(|| snapshot_field_error(member, "expected an array"))
        };
        let counters = list("counters")?
            .iter()
            .map(|c| {
                Ok(CounterSnapshot {
                    module: series(c, "module")?,
                    name: series(c, "name")?,
                    value: c
                        .get("value")
                        .and_then(json::Value::as_u64)
                        .ok_or_else(|| snapshot_field_error("value", "expected a u64"))?,
                })
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let histograms = list("histograms")?
            .iter()
            .map(|h| {
                Ok(HistogramSnapshot {
                    module: series(h, "module")?,
                    name: series(h, "name")?,
                    count: count_of(h)?,
                    sum: float_or(h, "sum", 0.0)?,
                    min: float_or(h, "min", f64::INFINITY)?,
                    max: float_or(h, "max", f64::NEG_INFINITY)?,
                })
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let spans = list("spans")?
            .iter()
            .map(|s| {
                Ok(SpanSnapshot {
                    module: series(s, "module")?,
                    name: series(s, "name")?,
                    count: count_of(s)?,
                    total_ms: float_or(s, "total_ms", 0.0)?,
                    min_ms: float_or(s, "min_ms", 0.0)?,
                    max_ms: float_or(s, "max_ms", 0.0)?,
                })
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        Ok(Snapshot {
            schema_version: version,
            enabled,
            counters,
            histograms,
            spans,
        })
    }

    /// Merges snapshots from independent processes (e.g. shard workers)
    /// into one, as if a single recorder had observed all the work:
    /// counters sum, histogram bounds take the min/max across inputs
    /// (with the `±inf` neutral elements for empty series), spans sum
    /// counts and totals while ignoring the `0` min/max placeholders of
    /// never-observed series. Series are keyed by `(module, name)`
    /// through `BTreeMap`s, so the output ordering is deterministic and
    /// independent of input order — merging the same set of snapshots in
    /// any order renders byte-identical JSON. `enabled` is the OR of the
    /// inputs; the schema version is this build's.
    pub fn merge_all(snapshots: &[Snapshot]) -> Snapshot {
        let mut counters: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut histograms: BTreeMap<(String, String), HistData> = BTreeMap::new();
        let mut spans: BTreeMap<(String, String), SpanData> = BTreeMap::new();
        let mut enabled = false;
        for snap in snapshots {
            enabled |= snap.enabled;
            for c in &snap.counters {
                *counters
                    .entry((c.module.clone(), c.name.clone()))
                    .or_insert(0) += c.value;
            }
            for h in &snap.histograms {
                let cell = histograms
                    .entry((h.module.clone(), h.name.clone()))
                    .or_default();
                cell.count += h.count;
                cell.sum += h.sum;
                cell.min = cell.min.min(h.min);
                cell.max = cell.max.max(h.max);
            }
            for s in &snap.spans {
                let cell = spans.entry((s.module.clone(), s.name.clone())).or_default();
                if s.count > 0 {
                    // A zero-count span's min/max are 0 placeholders,
                    // not observations — fold in only observed spans.
                    cell.min_ms = if cell.count == 0 {
                        s.min_ms
                    } else {
                        cell.min_ms.min(s.min_ms)
                    };
                    cell.max_ms = cell.max_ms.max(s.max_ms);
                    cell.count += s.count;
                    cell.total_ms += s.total_ms;
                }
            }
        }
        Snapshot {
            schema_version: SCHEMA_VERSION,
            enabled,
            counters: counters
                .into_iter()
                .map(|((module, name), value)| CounterSnapshot {
                    module,
                    name,
                    value,
                })
                .collect(),
            histograms: histograms
                .into_iter()
                .map(|((module, name), h)| HistogramSnapshot {
                    module,
                    name,
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                })
                .collect(),
            spans: spans
                .into_iter()
                .map(|((module, name), s)| SpanSnapshot {
                    module,
                    name,
                    count: s.count,
                    total_ms: s.total_ms,
                    min_ms: s.min_ms,
                    max_ms: s.max_ms,
                })
                .collect(),
        }
    }

    /// Renders a human summary table (the `--metrics` stderr output).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "== telemetry summary (schema v{}) ==\n",
            self.schema_version
        );
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                out.push_str(&format!(
                    "  {:<40} {:>12}\n",
                    format!("{}/{}", c.module, c.name),
                    c.value
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                if h.count == 0 {
                    out.push_str(&format!(
                        "  {:<40} {:>12}\n",
                        format!("{}/{}", h.module, h.name),
                        "empty"
                    ));
                } else {
                    out.push_str(&format!(
                        "  {:<40} count {:>6}  sum {:.3}  min {:.3}  max {:.3}\n",
                        format!("{}/{}", h.module, h.name),
                        h.count,
                        h.sum,
                        h.min,
                        h.max
                    ));
                }
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:<40} count {:>6}  total {:.3} ms  (min {:.3}, max {:.3})\n",
                    format!("{}/{}", s.module, s.name),
                    s.count,
                    s.total_ms,
                    s.min_ms,
                    s.max_ms
                ));
            }
        }
        out
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder the production stack reports into. Disabled
/// until someone calls `global().enable()` (the `repro` binary does so
/// for `--metrics`/`--metrics-out`).
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::new();
        let c = r.counter("m", "c");
        c.add(5);
        let h = r.histogram("m", "h");
        h.observe(1.0);
        drop(r.span("m", "s"));
        let snap = r.snapshot();
        assert!(!snap.enabled);
        assert_eq!(snap.counters[0].value, 0);
        assert_eq!(snap.histograms[0].count, 0);
        assert_eq!(snap.spans.len(), 0, "disabled spans do not even register");
    }

    #[test]
    fn enabled_recorder_aggregates() {
        let r = Recorder::new();
        r.enable();
        let c = r.counter("m", "c");
        c.add(2);
        c.incr();
        assert_eq!(c.get(), 3);
        let h = r.histogram("m", "h");
        h.observe(10.0);
        h.observe(40.0);
        drop(r.span("m", "s"));
        let snap = r.snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.counters[0].value, 3);
        assert_eq!(snap.histograms[0].count, 2);
        assert_eq!(snap.histograms[0].sum, 50.0);
        assert_eq!(snap.histograms[0].min, 10.0);
        assert_eq!(snap.histograms[0].max, 40.0);
        assert_eq!(snap.spans[0].count, 1);
        assert!(snap.spans[0].total_ms >= 0.0);
    }

    #[test]
    fn handles_share_one_cell_and_reset_preserves_registration() {
        let r = Recorder::new();
        r.enable();
        let a = r.counter("m", "c");
        let b = r.counter("m", "c");
        a.add(1);
        b.add(1);
        assert_eq!(a.get(), 2);
        r.reset();
        assert_eq!(a.get(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 1, "registration survives reset");
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let r = Recorder::new();
        r.enable();
        r.counter("z", "last").incr();
        r.counter("a", "first").incr();
        r.counter("a", "second").incr();
        let keys: Vec<String> = r
            .snapshot()
            .counters
            .iter()
            .map(|c| format!("{}/{}", c.module, c.name))
            .collect();
        assert_eq!(keys, vec!["a/first", "a/second", "z/last"]);
    }

    #[test]
    fn counters_sum_across_threads() {
        let r = Recorder::new();
        r.enable();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = r.counter("m", "c");
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("m", "c").get(), 4000);
    }

    #[test]
    fn json_is_versioned_and_null_safe() {
        let r = Recorder::new();
        r.enable();
        r.counter("fleet", "task_started").add(7);
        r.histogram("fleet", "backoff_ms"); // registered, never observed
        let js = r.snapshot().to_json();
        assert!(js.starts_with("{\"schema_version\":1,\"enabled\":true"));
        assert!(js.contains("\"value\":7"));
        assert!(
            js.contains("\"min\":null"),
            "empty histogram min must serialize as null: {js}"
        );
        assert!(!js.contains("inf"), "no non-finite literals in JSON: {js}");
    }

    #[test]
    fn summary_lists_every_series() {
        let r = Recorder::new();
        r.enable();
        r.counter("engine", "sense_ops").add(9);
        r.histogram("fleet", "backoff_ms").observe(10.0);
        drop(r.span("figure", "fig3"));
        let s = r.snapshot().summary();
        assert!(s.contains("engine/sense_ops"));
        assert!(s.contains("fleet/backoff_ms"));
        assert!(s.contains("figure/fig3"));
    }

    #[test]
    fn global_is_disabled_by_default() {
        // No test in this crate enables the global recorder, so this is
        // safe to assert even under the parallel test harness.
        assert!(!global().is_enabled());
    }

    fn busy_snapshot() -> Snapshot {
        let r = Recorder::new();
        r.enable();
        r.counter("fleet", "task_completed").add(7);
        r.counter("engine", "sense_ops").add(3);
        r.histogram("fleet", "backoff_ms").observe(10.0);
        r.histogram("fleet", "backoff_ms").observe(40.0);
        r.histogram("fleet", "attempts"); // registered, stays empty
        drop(r.span("figure", "fig3"));
        r.snapshot()
    }

    #[test]
    fn snapshot_json_round_trips() {
        let snap = busy_snapshot();
        let parsed = Snapshot::parse(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap, "parse ∘ render is the identity");
        assert_eq!(parsed.to_json(), snap.to_json(), "render is canonical");
    }

    #[test]
    fn empty_histogram_bounds_survive_the_null_rendering() {
        let r = Recorder::new();
        r.enable();
        r.histogram("fleet", "attempts");
        let snap = r.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"min\":null,\"max\":null"), "{json}");
        let parsed = Snapshot::parse(&json).unwrap();
        assert_eq!(parsed.histograms[0].min, f64::INFINITY);
        assert_eq!(parsed.histograms[0].max, f64::NEG_INFINITY);
    }

    #[test]
    fn parse_rejects_malformed_documents_with_typed_errors() {
        assert!(matches!(Snapshot::parse("{]"), Err(SnapshotError::Json(_))));
        assert!(matches!(
            Snapshot::parse("{\"schema_version\":99,\"enabled\":true,\"counters\":[],\"histograms\":[],\"spans\":[]}"),
            Err(SnapshotError::SchemaVersion { found: 99, .. })
        ));
        assert!(matches!(
            Snapshot::parse("{\"schema_version\":1,\"enabled\":true}"),
            Err(SnapshotError::Field { .. })
        ));
    }

    #[test]
    fn merge_sums_counters_and_folds_bounds() {
        let a = Recorder::new();
        a.enable();
        a.counter("fleet", "task_completed").add(2);
        a.histogram("fleet", "backoff_ms").observe(10.0);
        drop(a.span("figure", "fig3"));
        let b = Recorder::new();
        b.enable();
        b.counter("fleet", "task_completed").add(5);
        b.counter("fleet", "task_failed").add(1);
        b.histogram("fleet", "backoff_ms").observe(40.0);
        b.histogram("fleet", "attempts"); // registered, stays empty
        let mut snap_b = b.snapshot();
        // A registered-but-never-observed span: count 0 with the 0.0
        // min/max placeholders.
        snap_b.spans.push(SpanSnapshot {
            module: "figure".into(),
            name: "fig3".into(),
            count: 0,
            total_ms: 0.0,
            min_ms: 0.0,
            max_ms: 0.0,
        });
        let merged = Snapshot::merge_all(&[a.snapshot(), snap_b]);
        let counter = |name: &str| {
            merged
                .counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
        };
        assert_eq!(counter("task_completed"), Some(7));
        assert_eq!(counter("task_failed"), Some(1));
        let h = merged
            .histograms
            .iter()
            .find(|h| h.name == "backoff_ms")
            .unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 50.0, 10.0, 40.0));
        let empty = merged
            .histograms
            .iter()
            .find(|h| h.name == "attempts")
            .unwrap();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.min, f64::INFINITY);
        let span = merged.spans.iter().find(|s| s.name == "fig3").unwrap();
        assert_eq!(span.count, 1, "zero-count span contributes nothing");
        assert!(span.min_ms >= 0.0 && span.max_ms >= span.min_ms);
        assert!(merged.enabled);
    }

    #[test]
    fn merge_output_is_independent_of_input_order() {
        let a = busy_snapshot();
        let mut b = busy_snapshot();
        b.counters.retain(|c| c.module == "fleet");
        let ab = Snapshot::merge_all(&[a.clone(), b.clone()]);
        let ba = Snapshot::merge_all(&[b, a]);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json(), ba.to_json(), "deterministic rendering");
        let keys: Vec<_> = ab
            .counters
            .iter()
            .map(|c| (c.module.clone(), c.name.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "BTreeMap ordering preserved");
    }
}
