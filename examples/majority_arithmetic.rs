//! Case study 1 in action: run *functional* majority-based bulk bitwise
//! operations (AND/OR/XOR) on the modelled DRAM and verify them against a
//! scalar reference, then print the Fig. 16 analytical speedup table.
//!
//! Run with: `cargo run --release --example majority_arithmetic`

use rand::rngs::StdRng;
use rand::SeedableRng;

use simra::bender::TestSetup;
use simra::casestudy::bitwise::{exec_and, exec_or, exec_xor, match_fraction};
use simra::casestudy::fig16_microbenchmarks;
use simra::dram::{BankId, BitRow, SubarrayId, VendorProfile};
use simra::pud::rowgroup::random_group;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 5);
    let mut rng = StdRng::seed_from_u64(2);
    let cols = setup.module().geometry().cols_per_row as usize;

    // A 32-row group gives MAJ3 10x input replication — the robust way.
    let group = random_group(
        setup.module().geometry(),
        BankId::new(0),
        SubarrayId::new(0),
        32,
        &mut rng,
    )
    .expect("group");

    let a = BitRow::random(&mut rng, cols);
    let b = BitRow::random(&mut rng, cols);

    let and = exec_and(&mut setup, &group, &a, &b, &mut rng)?;
    let or = exec_or(&mut setup, &group, &a, &b, &mut rng)?;
    let xor = exec_xor(&mut setup, &group, &a, &b, &mut rng)?;

    let ref_and = BitRow::from_bits((0..cols).map(|i| a.get(i) && b.get(i)));
    let ref_or = BitRow::from_bits((0..cols).map(|i| a.get(i) || b.get(i)));
    let ref_xor = BitRow::from_bits((0..cols).map(|i| a.get(i) ^ b.get(i)));

    println!("in-DRAM bulk bitwise over {cols} bitlines (vs scalar reference):");
    println!(
        "  AND correct: {:.2} %",
        100.0 * match_fraction(&and, &ref_and)
    );
    println!(
        "  OR  correct: {:.2} %",
        100.0 * match_fraction(&or, &ref_or)
    );
    println!(
        "  XOR correct: {:.2} % (three chained in-DRAM ops)",
        100.0 * match_fraction(&xor, &ref_xor)
    );

    // The Fig. 16 analytical model: speedups of MAJ5/7/9 over the MAJ3
    // baseline across the seven microbenchmarks, per manufacturer.
    let profiles = [VendorProfile::mfr_h_m_die(), VendorProfile::mfr_m_e_die()];
    println!("\n{}", fig16_microbenchmarks(&profiles, 6, 11));
    Ok(())
}
