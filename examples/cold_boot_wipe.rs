//! Case study 2 in action: functionally destroy a subarray's contents
//! with Multi-RowCopy (the fastest §8.2 strategy), verify every row was
//! overwritten, and print the Fig. 17 wipe-time comparison.
//!
//! Run with: `cargo run --release --example cold_boot_wipe`

use rand::rngs::StdRng;
use rand::SeedableRng;

use simra::bender::TestSetup;
use simra::casestudy::fig17_coldboot;
use simra::dram::{ApaTiming, BankId, BitRow, RowAddr, SubarrayId, VendorProfile};
use simra::pud::multirowcopy::exec_multirowcopy;
use simra::pud::rowgroup::tile_groups;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 77);
    let mut rng = StdRng::seed_from_u64(9);
    let geometry = *setup.module().geometry();
    let cols = geometry.cols_per_row as usize;
    let bank = BankId::new(0);
    let rows_in_sa = geometry.rows_per_subarray;

    // Fill an entire subarray with "secrets" (random data).
    for r in 0..rows_in_sa {
        let secret = BitRow::random(&mut rng, cols);
        setup.init_row(bank, RowAddr::new(r), &secret)?;
    }

    // Wipe it with 32-row Multi-RowCopy: tile the subarray with
    // simultaneous-activation groups, seed each group's source row with
    // zeros, and fan the zeros out — 16 APAs wipe all 512 rows.
    let mut ops = 0usize;
    for group in tile_groups(&geometry, bank, SubarrayId::new(0)) {
        setup.init_row(bank, group.r_f, &BitRow::zeros(cols))?;
        exec_multirowcopy(&mut setup, &group, ApaTiming::best_for_multi_row_copy())?;
        ops += 1;
    }

    // Verify: every row of the subarray is (almost entirely) zeros.
    let mut leaked_bits = 0usize;
    let mut checked = 0usize;
    for r in 0..rows_in_sa {
        let row = setup.read_row(bank, RowAddr::new(r))?;
        leaked_bits += row.count_ones();
        checked += cols;
    }
    println!(
        "wiped {rows_in_sa} rows with {ops} Multi-RowCopy ops; residual 1-bits: \
         {leaked_bits}/{checked} ({:.4} %)",
        100.0 * leaked_bits as f64 / checked as f64
    );

    // The Fig. 17 comparison across all strategies.
    println!("\n{}", fig17_coldboot());
    Ok(())
}
