//! The mechanism, laid bare: run the *same* program shape with three
//! different timings through the clocked interpreter, and watch the
//! JEDEC protocol checker report which rules each run (deliberately)
//! violates — and what each violation makes the DRAM *do*.
//!
//! * t1 = 1.5 ns, t2 = 3 ns  → tRAS + tRP violated ⇒ MAJ semantics
//! * t1 = 36 ns,  t2 = 3 ns  → tRP violated        ⇒ Multi-RowCopy
//! * t1 = 36 ns,  t2 = 6 ns  → tRP violated (less) ⇒ RowClone
//!
//! Run with: `cargo run --release --example timing_violations`

use simra::bender::{BenderProgram, TestSetup};
use simra::dram::{ApaTiming, BankId, BitRow, RowAddr, VendorProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 7);
    let cols = setup.module().geometry().cols_per_row as usize;
    let bank = BankId::new(0);
    let timing = setup.module().profile().timing;

    for (label, apa) in [
        ("MAJ timing      (1.5, 3)", ApaTiming::best_for_majx()),
        (
            "Multi-RowCopy   (36, 3)",
            ApaTiming::best_for_multi_row_copy(),
        ),
        ("RowClone        (36, 6)", ApaTiming::row_clone()),
    ] {
        // Fresh data: row 0 all-1s, rows 1..8 all-0s.
        setup.init_row(bank, RowAddr::new(0), &BitRow::ones(cols))?;
        for r in 1..8u32 {
            setup.init_row(bank, RowAddr::new(r), &BitRow::zeros(cols))?;
        }
        let program = BenderProgram::apa(bank, RowAddr::new(0), RowAddr::new(7), apa, &timing);
        let run = setup.run_program(&program, None)?;

        println!(
            "{label}: {} commands, {:.1} ns",
            run.commands, run.latency_ns
        );
        for v in &run.violations {
            println!("   {v}");
        }
        // What did the open rows end up holding?
        for r in [0u32, 1, 6, 7] {
            let ones = setup.read_row(bank, RowAddr::new(r))?.count_ones();
            println!("   row {r}: {ones}/{cols} ones");
        }
        println!();
    }
    Ok(())
}
