//! A miniature paper-style characterization of one DRAM module: subarray
//! boundary reverse engineering (§3.1), the MAJX ladder (Fig. 7), and the
//! Multi-RowCopy timing sweep (Fig. 10), printed as tables.
//!
//! Run with: `cargo run --release --example characterize_module [quick]`

use simra::bender::TestSetup;
use simra::characterize::config::{ExperimentConfig, ModuleUnderTest};
use simra::characterize::{fig10_mrc_timing, fig7_majx_patterns, Session};
use simra::dram::{BankId, VendorProfile};
use simra::pud::boundary::{find_boundaries, infer_subarray_size};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Characterize a single SK Hynix-like module.
    let profile = VendorProfile::mfr_h_m_die();
    let mut setup = TestSetup::new(profile.clone(), 123);
    println!("module under test: {}", setup.module().profile().label());

    // Step 1 — reverse engineer the subarray boundaries with RowClone
    // sweeps, exactly like §3.1 (copies only succeed on shared bitlines).
    let boundaries = find_boundaries(&mut setup, BankId::new(0), 1100)?;
    println!("RowClone-derived subarray boundaries (first 1100 rows): {boundaries:?}");
    match infer_subarray_size(&boundaries) {
        Some(size) => println!("inferred subarray size: {size} rows (Table 1 says 512)"),
        None => println!("no boundary inside the probed range"),
    }

    // Step 2 — run two of the paper's figure sweeps on just this module.
    let session = Session::new(ExperimentConfig {
        modules: vec![ModuleUnderTest { profile, seed: 123 }],
        ..ExperimentConfig::quick()
    });
    println!("\n{}", fig7_majx_patterns(&session));
    println!("{}", fig10_mrc_timing(&session));
    Ok(())
}
