//! Quickstart: mount a modelled DDR4 module, activate 32 rows at once,
//! run an in-DRAM MAJ3 with 10× input replication, and copy one row to 31
//! others — the paper's three headline capabilities in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;

use simra::bender::TestSetup;
use simra::dram::{ApaTiming, BankId, BitRow, DataPattern, SubarrayId, VendorProfile};
use simra::pud::act::activation_success;
use simra::pud::maj::{majx_success, MajConfig};
use simra::pud::multirowcopy::multirowcopy_success;
use simra::pud::rowgroup::random_group;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Mount an SK Hynix-like 4 Gb module in the virtual rig (50 °C, 2.5 V).
    let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 42);
    let mut rng = StdRng::seed_from_u64(1);
    println!("module: {}", setup.module().profile().label());

    // Pick a row group that a single ACT→PRE→ACT activates as 32 rows.
    let group = random_group(
        setup.module().geometry(),
        BankId::new(0),
        SubarrayId::new(0),
        32,
        &mut rng,
    )
    .expect("a 512-row subarray always hosts 32-row groups");
    println!(
        "APA {} -> PRE -> {} simultaneously opens {} rows",
        group.r_f,
        group.r_s,
        group.n_rows()
    );

    // 1. Simultaneous many-row activation (§4): how reliably do all 32
    //    rows store a pattern written through the row buffer?
    let act = activation_success(
        &mut setup,
        &group,
        ApaTiming::best_for_activation(),
        DataPattern::Random,
        &mut rng,
    )?;
    println!(
        "32-row activation success: {:.2} % (paper: ≥ 99.85 %)",
        act * 100.0
    );

    // 2. MAJ3 with input replication (§5): each operand stored 10×.
    let maj3 = majx_success(
        &mut setup,
        &group,
        3,
        ApaTiming::best_for_majx(),
        DataPattern::Random,
        &MajConfig::default(),
        &mut rng,
    )?;
    println!(
        "MAJ3 @ 32-row activation:  {:.2} % (paper: 99.00 %)",
        maj3 * 100.0
    );

    // 3. Multi-RowCopy (§6): one source row to 31 destinations at once.
    let cols = setup.module().geometry().cols_per_row as usize;
    let source = BitRow::random(&mut rng, cols);
    let mrc = multirowcopy_success(
        &mut setup,
        &group,
        ApaTiming::best_for_multi_row_copy(),
        &source,
    )?;
    println!(
        "Multi-RowCopy to 31 rows:  {:.3} % (paper: 99.982 %)",
        mrc * 100.0
    );

    Ok(())
}
