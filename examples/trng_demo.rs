//! TRNG extension demo (§10.1 pointer): harvest true-random bits from
//! metastable bitlines under balanced many-row activation, QUAC-TRNG
//! style — identification phase, harvest phase, von Neumann debiasing,
//! and a quick bias/serial-correlation check.
//!
//! Run with: `cargo run --release --example trng_demo`

use rand::rngs::StdRng;
use rand::SeedableRng;

use simra::bender::TestSetup;
use simra::dram::{BankId, SubarrayId, VendorProfile};
use simra::pud::rowgroup::random_group;
use simra::pud::trng::{find_trng_columns, generate_bits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut setup = TestSetup::new(VendorProfile::mfr_h_m_die(), 99);
    let mut rng = StdRng::seed_from_u64(3);
    let group = random_group(
        setup.module().geometry(),
        BankId::new(0),
        SubarrayId::new(0),
        16,
        &mut rng,
    )
    .expect("group");

    // Identification: which bitlines are metastable under a balanced
    // (half-1s / half-0s) 16-row activation?
    let cols = find_trng_columns(&mut setup, &group, 1.5)?;
    let total = setup.module().geometry().cols_per_row;
    println!(
        "identified {} TRNG columns out of {} bitlines ({:.1} %)",
        cols.len(),
        total,
        100.0 * cols.len() as f64 / total as f64
    );

    // Harvest: repeated balanced activations + von Neumann debiasing.
    let bits = generate_bits(&mut setup, &group, 4096, &mut rng)?;
    let ones = bits.iter().filter(|b| **b).count();
    println!(
        "harvested {} debiased bits; ones fraction {:.4}",
        bits.len(),
        ones as f64 / bits.len() as f64
    );

    // Crude serial-correlation check (adjacent-bit agreement ≈ 50 %).
    let agree = bits.windows(2).filter(|w| w[0] == w[1]).count();
    println!(
        "adjacent-bit agreement: {:.4} (ideal 0.5)",
        agree as f64 / (bits.len() - 1) as f64
    );
    Ok(())
}
